// figret_cli — run any TE scheme on any built-in scenario from the command
// line; the embedding surface a network operator would script against.
//
//   figret_cli --topology geant --traffic wan --scheme figret \
//              --epochs 20 --robust-weight 4 --save model.bin
//   figret_cli --topology mesh --nodes 8 --traffic tor --scheme des
//   figret_cli serve --topology geant --scheme pred --rate 500 --workers 4
//   figret_cli --list
//
// Schemes: figret, dote, teal, des, pred, heuristic, twostage, oblivious,
// cope. Topologies: geant, mesh, tor (random regular), wan (sparse).
// Traffic: wan, gravity, tor, pod, pfabric, plus the adversarial/jitter
// scenario suite: jitter, onoff, competitor, mixed, adversarial (a regret-
// maximizing attack sequence tiled over the test split).
//
// The `serve` subcommand replays the test split of the trace through the
// streaming serving loop (paced arrivals, worker pipeline, SLO accounting)
// instead of the batch evaluation harness.
#include <iostream>
#include <limits>
#include <memory>
#include <optional>
#include <sstream>
#include <thread>

#include "net/fabric.h"
#include "net/racke_paths.h"
#include "net/topology.h"
#include "net/yen.h"
#include "nn/serialize.h"
#include "te/chaos.h"
#include "te/cope.h"
#include "te/figret.h"
#include "te/harness.h"
#include "te/heuristic_f.h"
#include "te/lp_schemes.h"
#include "te/oblivious.h"
#include "te/retrain_monitor.h"
#include "te/serving_loop.h"
#include "te/teal_like.h"
#include "te/two_stage.h"
#include "traffic/adversary.h"
#include "traffic/feed.h"
#include "traffic/generators.h"
#include "traffic/scenarios.h"
#include "util/args.h"
#include "util/json.h"
#include "util/parallel.h"
#include "util/table.h"

namespace {

using namespace figret;

void print_usage(std::ostream& os) {
  os <<
      "figret_cli — FIGRET traffic engineering playground\n\n"
      "  --topology  geant | mesh | tor | wan      (default geant)\n"
      "  --nodes     N (mesh/tor/wan sizes)        (default 8/16/30)\n"
      "  --traffic   wan | gravity | tor | pod | pfabric |\n"
      "              jitter | onoff | competitor | mixed | adversarial\n"
      "                                            (default matches topology)\n"
      "  --snapshots T                             (default 240)\n"
      "  --scheme    figret | dote | teal | des | pred | heuristic |\n"
      "              twostage | oblivious | cope   (default figret)\n"
      "  --epochs    N    --history H    --robust-weight W\n"
      "  --racke     use Racke-style (SMORE) path selection\n"
      "  --stride    evaluate every k-th test snapshot (default 2)\n"
      "  --seed      trace seed (default 42)\n"
      "  --threads   evaluation threads (0 = all cores, 1 = serial; default 0)\n"
      "  --budget    LP time budget in seconds (oblivious/cope; default 60)\n"
      "  --save      path to write the trained FIGRET/DOTE model\n"
      "  --list      print available scenarios and exit\n"
      "\n"
      "serve — stream the test split through the serving loop:\n"
      "  figret_cli serve [shared flags above] ...\n"
      "  --rate      offered snapshots per second (0 = as fast as accepted)\n"
      "  --burst     snapshots per arrival burst       (default 1)\n"
      "  --jitter    pacing jitter fraction in [0, 1)  (default 0)\n"
      "  --workers   serving workers (0 = all cores)   (default 2)\n"
      "  --slo-ms    serve-latency SLO in ms (0 = off) (default 0)\n"
      "  --ring      snapshot ring capacity            (default 256)\n"
      "  --table     WCMP table size per pair          (default 16)\n"
      "  --oracle    per-snapshot omniscient LP normalizer\n"
      "  --drop      drop snapshots on backpressure instead of retrying\n"
      "  --monitor   run the retraining drift monitor on the stream\n"
      "  --json      path to write serve stats as JSON\n"
      "  --solver-deadline-ms  wall-clock budget per oracle resolve (0 = off)\n"
      "  --fallback  last-good | uniform | none      (default last-good)\n"
      "              ladder for rejected advisor outputs: none disables\n"
      "              output validation entirely\n"
      "  --chaos     seed-driven fault schedule, e.g.\n"
      "              --chaos intensity=0.2  or\n"
      "              --chaos seed=7,fail=0.1,repair=4,overrun=0.2,corrupt=0.1\n"
      "              (keys: seed fail repair maxrepair maxfail overrun stall\n"
      "              stallms corrupt demand burst intensity). Replaces the\n"
      "              paced feed with a deterministic chaos soak and prints a\n"
      "              recovery report.\n";
}

/// Thrown for malformed invocations (unknown flag/subcommand, bad value):
/// main prints usage and exits 2, distinct from runtime failures (exit 1).
struct UsageError : std::invalid_argument {
  using std::invalid_argument::invalid_argument;
};

bool is_serve(const util::Args& args) {
  return !args.positional().empty() && args.positional().front() == "serve";
}

void validate(const util::Args& args) {
  try {
    if (is_serve(args)) {
      args.expect_only({"topology", "nodes", "traffic", "snapshots", "scheme",
                        "epochs", "history", "robust-weight", "racke", "seed",
                        "rate", "burst", "jitter", "workers", "slo-ms", "ring",
                        "table", "oracle", "drop", "monitor", "json",
                        "solver-deadline-ms", "fallback", "chaos", "help"});
    } else {
      args.expect_only({"topology", "nodes", "traffic", "snapshots", "scheme",
                        "epochs", "history", "robust-weight", "racke",
                        "stride", "seed", "threads", "budget", "save", "list",
                        "help"});
    }
  } catch (const std::invalid_argument& e) {
    throw UsageError(e.what());
  }
  if (args.positional().size() > (is_serve(args) ? 1u : 0u))
    throw UsageError("unknown subcommand '" +
                     args.positional()[is_serve(args) ? 1 : 0] +
                     "' (figret_cli takes --flags, plus the optional "
                     "'serve' subcommand)");
}

/// Flag readers that turn malformed values into usage errors (exit 2), and
/// reject negatives for count-valued flags before the size_t cast can wrap.
std::size_t flag_size(const util::Args& args, const std::string& key,
                      long fallback) {
  long v = fallback;
  try {
    v = args.get_int(key, fallback);
  } catch (const std::invalid_argument& e) {
    throw UsageError(e.what());
  }
  if (v < 0)
    throw UsageError("flag --" + key + " must be >= 0, got " +
                     std::to_string(v));
  return static_cast<std::size_t>(v);
}

double flag_double(const util::Args& args, const std::string& key,
                   double fallback) {
  try {
    return args.get_double(key, fallback);
  } catch (const std::invalid_argument& e) {
    throw UsageError(e.what());
  }
}

bool flag_bool(const util::Args& args, const std::string& key) {
  try {
    return args.get_bool(key);
  } catch (const std::invalid_argument& e) {
    // E.g. "--racke extra": the stray token was consumed as the switch's
    // value; running without the switch would silently change the result.
    throw UsageError(e.what());
  }
}

net::Graph make_graph(const util::Args& args) {
  const std::string topo = args.get_or("topology", "geant");
  if (topo == "geant") return net::geant();
  if (topo == "mesh")
    return net::full_mesh(flag_size(args, "nodes", 8));
  if (topo == "tor") {
    const std::size_t n = flag_size(args, "nodes", 16);
    return net::random_regular(n, std::max<std::size_t>(3, n / 4), 7);
  }
  if (topo == "wan") {
    const std::size_t n = flag_size(args, "nodes", 30);
    return net::sparse_wan(n, n + n / 4, 7);
  }
  throw UsageError("unknown --topology " + topo);
}

traffic::TrafficTrace make_traffic(const util::Args& args,
                                   const te::PathSet& paths) {
  const std::size_t nodes = paths.num_nodes();
  const std::string topo = args.get_or("topology", "geant");
  const std::string kind =
      args.get_or("traffic", topo == "geant" || topo == "wan" ? "wan" : "tor");
  const std::size_t len = flag_size(args, "snapshots", 240);
  const auto seed = static_cast<std::uint64_t>(flag_size(args, "seed", 42));
  if (kind == "wan") return traffic::wan_trace(nodes, len, seed);
  if (kind == "gravity") return traffic::gravity_trace(nodes, len, seed);
  if (kind == "tor") return traffic::dc_tor_trace(nodes, len, seed);
  if (kind == "pod") return traffic::dc_pod_trace(nodes, 4, len, seed);
  if (kind == "pfabric") return traffic::pfabric_trace(nodes, len, seed);
  if (kind == "jitter") return traffic::jitter_spike_trace(nodes, len, seed);
  if (kind == "onoff") return traffic::onoff_trace(nodes, len, seed);
  if (kind == "competitor")
    return traffic::competitor_trace(nodes, len, seed);
  if (kind == "mixed")
    return traffic::mixed_interactive_bulk_trace(nodes, len, seed);
  if (kind == "adversarial") {
    // A WAN base trace fills the training prefix and primes histories; the
    // regret adversary attacks a prediction-TE victim and its sequence is
    // tiled over the held-out last quarter (the 0.75 split both modes use).
    traffic::TrafficTrace trace = traffic::wan_trace(nodes, len, seed);
    const std::size_t cut = len * 3 / 4;
    te::PredictionTe victim(paths);
    const std::size_t window =
        std::max<std::size_t>(1, victim.history_window());
    if (cut < window || cut >= len)
      throw UsageError("--traffic adversarial needs more --snapshots");
    traffic::AdversaryOptions aopt;
    aopt.steps = 4;
    aopt.iterations = 24;
    aopt.oracle_seeds = 3;
    aopt.seed = seed;
    traffic::RegretAdversary adversary(paths, aopt);
    const std::span<const traffic::DemandMatrix> hist{
        trace.snapshots.data() + (cut - window), window};
    const traffic::AdversaryResult att = adversary.attack(victim, hist);
    for (std::size_t t = cut; t < len; ++t)
      trace.snapshots[t] = att.trace.snapshots[(t - cut) % att.trace.size()];
    return trace;
  }
  throw UsageError("unknown --traffic " + kind);
}

/// One untrained advisor instance for a serving worker. FIGRET/DOTE are
/// handled separately (train once, clone the checkpoint per worker).
std::unique_ptr<te::TeScheme> make_worker_scheme(const std::string& name,
                                                 const te::PathSet& paths) {
  if (name == "teal") return std::make_unique<te::TealLikeTe>(paths);
  if (name == "des") return std::make_unique<te::DesensitizationTe>(paths);
  if (name == "pred") return std::make_unique<te::PredictionTe>(paths);
  if (name == "heuristic") return std::make_unique<te::HeuristicFTe>(paths);
  if (name == "twostage")
    return std::make_unique<te::TwoStageTe>(
        paths, std::make_unique<traffic::EwmaPredictor>(0.4));
  if (name == "oblivious" || name == "cope")
    throw UsageError("--scheme " + name +
                     " serves one static configuration — use batch mode");
  throw UsageError("unknown --scheme " + name);
}

int run_serve(const util::Args& args) {
  const net::Graph graph = make_graph(args);
  const auto per_pair = flag_bool(args, "racke")
                            ? net::racke_style_paths(graph, {})
                            : net::all_pairs_k_shortest(graph, 3);
  const te::PathSet paths = te::PathSet::build(graph, per_pair);
  const traffic::TrafficTrace trace = make_traffic(args, paths);

  std::size_t workers = flag_size(args, "workers", 2);
  if (workers == 0) workers = util::default_threads();

  // Validate ladder/chaos flags before any training happens, so a typo
  // fails in milliseconds, not after a fit.
  const std::string fallback = args.get_or("fallback", "last-good");
  if (fallback != "last-good" && fallback != "uniform" && fallback != "none")
    throw UsageError("unknown --fallback " + fallback +
                     " (last-good | uniform | none)");
  std::optional<te::ChaosOptions> chaos_opt;
  if (const auto spec = args.get("chaos")) {
    try {
      chaos_opt = te::parse_chaos_spec(*spec);
    } catch (const std::invalid_argument& e) {
      throw UsageError(e.what());
    }
  }

  // Advisors learn on the chronological training split; the stream replays
  // the held-out test split (the paper's Eq. 1 information model).
  const auto split = trace.split(0.75);
  const traffic::TrafficTrace& train = split.first;

  const std::string scheme_name = args.get_or("scheme", "figret");
  std::vector<std::unique_ptr<te::TeScheme>> schemes;
  if (scheme_name == "figret" || scheme_name == "dote") {
    te::FigretOptions fopt;
    fopt.history = flag_size(args, "history", 8);
    fopt.epochs = flag_size(args, "epochs", 15);
    fopt.hidden = {128, 128, 128};
    fopt.robust_weight = flag_double(args, "robust-weight", 4.0);
    const bool dote = scheme_name == "dote";
    auto trained = std::make_unique<te::FigretScheme>(
        paths, dote ? te::dote_options(fopt) : fopt, dote ? "DOTE" : "FIGRET");
    trained->fit(train);
    // Train once, ship the checkpoint to every worker (§6: controllers load
    // models far more often than they train them).
    std::stringstream checkpoint;
    trained->save(checkpoint);
    schemes.push_back(std::move(trained));
    for (std::size_t i = 1; i < workers; ++i) {
      auto clone = std::make_unique<te::FigretScheme>(
          paths, dote ? te::dote_options(fopt) : fopt,
          dote ? "DOTE" : "FIGRET");
      std::stringstream is(checkpoint.str());
      clone->load(is);
      schemes.push_back(std::move(clone));
    }
  } else {
    for (std::size_t i = 0; i < workers; ++i) {
      schemes.push_back(make_worker_scheme(scheme_name, paths));
      schemes.back()->fit(train);
    }
  }

  std::size_t window = 1;
  for (const auto& s : schemes)
    window = std::max(window, s->history_window());
  const std::size_t begin = std::max(train.size(), window);
  if (begin >= trace.size())
    throw std::invalid_argument(
        "serve: trace too short for the advisor history window");

  te::ServingLoop::Options lopt;
  lopt.workers = workers;
  lopt.queue_capacity = flag_size(args, "ring", 256);
  lopt.slo_seconds = flag_double(args, "slo-ms", 0.0) * 1e-3;
  lopt.oracle = flag_bool(args, "oracle");
  lopt.wcmp_table_size =
      static_cast<std::uint32_t>(flag_size(args, "table", 16));
  lopt.solver_deadline_seconds =
      flag_double(args, "solver-deadline-ms", 0.0) * 1e-3;
  if (fallback == "none") lopt.validate_outputs = false;
  if (fallback == "uniform") lopt.fallback_last_good = false;

  std::optional<te::ChaosEngine> chaos;
  if (chaos_opt) {
    chaos.emplace(paths, net::node_domains(graph), *chaos_opt,
                  static_cast<std::uint32_t>(begin),
                  static_cast<std::uint32_t>(trace.size()));
    lopt.chaos = &*chaos;
  }
  te::ServingLoop loop(paths, trace, lopt);

  std::vector<te::TeScheme*> advisors;
  for (const auto& s : schemes) advisors.push_back(s.get());

  if (chaos) {
    // Chaos soak: the engine's driver replaces the paced feed — every epoch
    // submitted exactly once, failure masks swapped at scheduled boundaries.
    const te::ChaosRunReport rep =
        te::run_chaos_serving(loop, *chaos, advisors);
    const auto& sum = chaos->summary();
    std::cout << "chaos serve: " << schemes.front()->name() << " on "
              << graph.num_nodes() << " nodes; epochs [" << begin << ", "
              << trace.size() << "), " << workers << " workers, seed "
              << chaos->options().seed << "\n"
              << "schedule: " << sum.failure_events << " failure events, "
              << sum.masked_epochs << " masked epochs, " << sum.overruns
              << " overruns, " << sum.corrupt_outputs << " corrupt outputs, "
              << sum.corrupt_demands << " corrupt demands, " << sum.stalls
              << " stalls, " << sum.bursts << " bursts\n"
              << "served " << rep.served << ": rungs fresh=" << rep.rungs[0]
              << " last-good=" << rep.rungs[1] << " uniform=" << rep.rungs[2]
              << "; degraded epochs " << rep.degraded_epochs
              << ", max recovery " << rep.max_recovery_epochs << " epochs\n"
              << "MLU mean: healthy " << rep.mlu_healthy_mean << ", degraded "
              << rep.mlu_degraded_mean << "; dropped demand "
              << rep.dropped_demand_total << "\n"
              << "determinism hash " << rep.determinism_hash
              << (rep.all_finite ? "; all weights finite\n"
                                 : "; NON-FINITE OUTPUT SERVED\n");
    loop.stats().print(std::cout);
    if (const auto path = args.get("json")) {
      util::Json j = util::Json::object();
      j.set("scheme", schemes.front()->name())
          .set("workers", static_cast<std::int64_t>(workers))
          .set("served", static_cast<std::int64_t>(rep.served))
          .set("rung_fresh", static_cast<std::int64_t>(rep.rungs[0]))
          .set("rung_last_good", static_cast<std::int64_t>(rep.rungs[1]))
          .set("rung_uniform", static_cast<std::int64_t>(rep.rungs[2]))
          .set("degraded_epochs",
               static_cast<std::int64_t>(rep.degraded_epochs))
          .set("max_recovery_epochs",
               static_cast<std::int64_t>(rep.max_recovery_epochs))
          .set("mlu_healthy_mean", rep.mlu_healthy_mean)
          .set("mlu_degraded_mean", rep.mlu_degraded_mean)
          .set("dropped_demand", rep.dropped_demand_total)
          .set("invalid_outputs",
               static_cast<std::int64_t>(rep.stats.invalid_outputs))
          .set("oracle_retries",
               static_cast<std::int64_t>(rep.stats.oracle_retries))
          .set("determinism_hash", std::to_string(rep.determinism_hash))
          .set("all_finite", rep.all_finite);
      j.write_file(*path, 2);
      std::cout << "stats written to " << *path << "\n";
    }
    return rep.all_finite ? 0 : 1;
  }

  loop.start(advisors);

  std::optional<te::RetrainMonitor> monitor;
  if (flag_bool(args, "monitor")) {
    monitor.emplace(te::RetrainPolicy{});
    monitor->set_reference(train);
  }

  // Single-producer replay: pace arrivals, drain results between offers so
  // the bounded results ring never stalls the workers.
  double raw_sum = 0.0, raw_max = 0.0, norm_sum = 0.0;
  std::uint64_t norm_count = 0;
  std::vector<te::SnapshotResult> batch;
  const auto consume = [&] {
    batch.clear();
    loop.drain(batch);
    for (const te::SnapshotResult& r : batch) {
      raw_sum += r.raw_mlu;
      raw_max = std::max(raw_max, r.raw_mlu);
      if (r.oracle_mlu > 0.0) {
        norm_sum += r.normalized;
        ++norm_count;
      }
      if (monitor)
        monitor->observe(trace[r.trace_index],
                         r.oracle_mlu > 0.0
                             ? r.normalized
                             : std::numeric_limits<double>::quiet_NaN());
    }
  };

  traffic::SnapshotFeed::Options fopt;
  fopt.begin = static_cast<std::uint32_t>(begin);
  fopt.end = static_cast<std::uint32_t>(trace.size());
  fopt.rate = flag_double(args, "rate", 0.0);
  fopt.burst = flag_size(args, "burst", 1);
  fopt.jitter = flag_double(args, "jitter", 0.0);
  fopt.drop_on_backpressure = flag_bool(args, "drop");
  traffic::SnapshotFeed feed(fopt);
  feed.run([&](std::uint32_t idx) {
    consume();
    return loop.try_submit(idx);
  });
  while (loop.completed() < loop.submitted()) {
    consume();
    std::this_thread::yield();
  }
  loop.finish();
  consume();

  const auto stats = loop.stats().snapshot();
  std::cout << "serve: " << schemes.front()->name() << " on "
            << graph.num_nodes() << " nodes / " << paths.num_paths()
            << " paths; snapshots [" << begin << ", " << trace.size()
            << "), " << workers << " workers\n"
            << "feed: offered " << feed.offered() << ", accepted "
            << feed.accepted() << ", dropped " << feed.dropped() << "\n";
  loop.stats().print(std::cout);
  if (stats.served > 0) {
    std::cout << "raw MLU: mean "
              << raw_sum / static_cast<double>(stats.served) << ", max "
              << raw_max << "\n";
    if (norm_count > 0)
      std::cout << "normalized MLU (vs omniscient): mean "
                << norm_sum / static_cast<double>(norm_count) << "\n";
  }
  if (monitor)
    std::cout << "retrain monitor: drifted " << monitor->drifted_in_window()
              << ", degraded " << monitor->degraded_in_window()
              << " in window; retrain "
              << (monitor->should_retrain() ? "RECOMMENDED" : "not needed")
              << "\n";

  if (const auto path = args.get("json")) {
    util::Json j = util::Json::object();
    j.set("scheme", schemes.front()->name())
        .set("workers", static_cast<std::int64_t>(workers))
        .set("snapshots_served", static_cast<std::int64_t>(stats.served))
        .set("offered", static_cast<std::int64_t>(feed.offered()))
        .set("dropped", static_cast<std::int64_t>(feed.dropped()))
        .set("overflows", static_cast<std::int64_t>(stats.overflows))
        .set("slo_ms", flag_double(args, "slo-ms", 0.0))
        .set("slo_violations",
             static_cast<std::int64_t>(stats.slo_violations))
        .set("serve_p50_s", stats.serve_p50)
        .set("serve_p99_s", stats.serve_p99)
        .set("serve_p999_s", stats.serve_p999)
        .set("e2e_p99_s", stats.e2e_p99)
        .set("raw_mlu_mean", stats.served > 0
                                 ? raw_sum / static_cast<double>(stats.served)
                                 : 0.0)
        .set("raw_mlu_max", raw_max);
    if (norm_count > 0)
      j.set("normalized_mlu_mean",
            norm_sum / static_cast<double>(norm_count));
    j.write_file(*path, 2);
    std::cout << "stats written to " << *path << "\n";
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    const util::Args args = [&] {
      try {
        return util::Args(argc, argv);
      } catch (const std::invalid_argument& e) {
        // E.g. a bare "--": malformed syntax is a usage error like any other.
        throw UsageError(e.what());
      }
    }();
    validate(args);
    if (flag_bool(args, "help") || (!is_serve(args) && flag_bool(args, "list"))) {
      print_usage(std::cout);
      return 0;
    }
    if (is_serve(args)) return run_serve(args);

    const net::Graph graph = make_graph(args);
    const auto per_pair =
        flag_bool(args, "racke")
            ? net::racke_style_paths(graph, {})
            : net::all_pairs_k_shortest(graph, 3);
    const te::PathSet paths = te::PathSet::build(graph, per_pair);
    const traffic::TrafficTrace trace = make_traffic(args, paths);

    std::cout << "topology: " << graph.num_nodes() << " nodes / "
              << graph.num_edges() << " arcs; " << paths.num_paths()
              << " candidate paths; trace: " << trace.size()
              << " snapshots\n";

    te::Harness::Options hopt;
    hopt.eval_stride = flag_size(args, "stride", 2);
    hopt.max_window = 16;
    hopt.threads = flag_size(args, "threads", 0);
    te::Harness harness(paths, trace, hopt);

    te::FigretOptions fopt;
    fopt.history = flag_size(args, "history", 8);
    fopt.epochs = flag_size(args, "epochs", 15);
    fopt.hidden = {128, 128, 128};
    fopt.robust_weight = flag_double(args, "robust-weight", 4.0);

    const std::string scheme_name = args.get_or("scheme", "figret");
    std::unique_ptr<te::TeScheme> scheme;
    te::SchemeEval result;
    if (scheme_name == "figret" || scheme_name == "dote") {
      auto fig = std::make_unique<te::FigretScheme>(
          paths, scheme_name == "dote" ? te::dote_options(fopt) : fopt,
          scheme_name == "dote" ? "DOTE" : "FIGRET");
      result = harness.evaluate(*fig);
      if (const auto path = args.get("save")) {
        nn::save_mlp_file(fig->model(), *path);
        std::cout << "model saved to " << *path << " ("
                  << fig->model().num_parameters() << " parameters)\n";
      }
      scheme = std::move(fig);
    } else if (scheme_name == "teal") {
      auto s = std::make_unique<te::TealLikeTe>(paths);
      result = harness.evaluate(*s);
      scheme = std::move(s);
    } else if (scheme_name == "des") {
      auto s = std::make_unique<te::DesensitizationTe>(paths);
      result = harness.evaluate(*s);
      scheme = std::move(s);
    } else if (scheme_name == "pred") {
      auto s = std::make_unique<te::PredictionTe>(paths);
      result = harness.evaluate(*s);
      scheme = std::move(s);
    } else if (scheme_name == "heuristic") {
      auto s = std::make_unique<te::HeuristicFTe>(paths);
      result = harness.evaluate(*s);
      scheme = std::move(s);
    } else if (scheme_name == "twostage") {
      auto s = std::make_unique<te::TwoStageTe>(
          paths, std::make_unique<traffic::EwmaPredictor>(0.4));
      result = harness.evaluate(*s);
      scheme = std::move(s);
    } else if (scheme_name == "oblivious") {
      te::ObliviousOptions oopt;
      oopt.time_budget_seconds = flag_double(args, "budget", 60.0);
      auto s = std::make_unique<te::ObliviousTe>(paths, oopt);
      s->fit(harness.train_trace());
      result = harness.evaluate_config(
          s->result().converged ? "Oblivious" : "Oblivious (budget hit)",
          s->advise({}));
      scheme = std::move(s);
    } else if (scheme_name == "cope") {
      te::CopeOptions copt;
      copt.oblivious.time_budget_seconds = flag_double(args, "budget", 60.0);
      auto s = std::make_unique<te::CopeTe>(paths, copt);
      s->fit(harness.train_trace());
      result = harness.evaluate_config(
          s->result().converged ? "COPE" : "COPE (budget hit)", s->advise({}));
      scheme = std::move(s);
    } else {
      throw UsageError("unknown --scheme " + scheme_name);
    }

    const util::BoxStats s = result.stats();
    util::Table t({"metric", "value"});
    t.add_row({"scheme", result.name});
    t.add_row({"eval snapshots", std::to_string(result.normalized.size())});
    t.add_row({"avg normalized MLU", util::fmt(result.average(), 4)});
    t.add_row({"median", util::fmt(s.median, 4)});
    t.add_row({"p90", util::fmt(s.p90, 4)});
    t.add_row({"p99", util::fmt(s.p99, 4)});
    t.add_row({"max", util::fmt(s.max, 4)});
    t.add_row({"severe (>2x)", std::to_string(result.severe_congestion)});
    t.add_row({"advise time (ms)",
               util::fmt(result.mean_advise_seconds * 1e3, 3)});
    t.print(std::cout);
    return 0;
  } catch (const UsageError& e) {
    std::cerr << "error: " << e.what() << "\n\n";
    print_usage(std::cerr);
    return 2;
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
}
