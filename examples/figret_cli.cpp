// figret_cli — run any TE scheme on any built-in scenario from the command
// line; the embedding surface a network operator would script against.
//
//   figret_cli --topology geant --traffic wan --scheme figret \
//              --epochs 20 --robust-weight 4 --save model.bin
//   figret_cli --topology mesh --nodes 8 --traffic tor --scheme des
//   figret_cli --list
//
// Schemes: figret, dote, teal, des, pred, heuristic, twostage, oblivious,
// cope. Topologies: geant, mesh, tor (random regular), wan (sparse).
// Traffic: wan, gravity, tor, pod, pfabric.
#include <iostream>
#include <memory>

#include "net/racke_paths.h"
#include "net/topology.h"
#include "net/yen.h"
#include "nn/serialize.h"
#include "te/cope.h"
#include "te/figret.h"
#include "te/harness.h"
#include "te/heuristic_f.h"
#include "te/lp_schemes.h"
#include "te/oblivious.h"
#include "te/teal_like.h"
#include "te/two_stage.h"
#include "traffic/generators.h"
#include "util/args.h"
#include "util/table.h"

namespace {

using namespace figret;

void print_usage() {
  std::cout <<
      "figret_cli — FIGRET traffic engineering playground\n\n"
      "  --topology  geant | mesh | tor | wan      (default geant)\n"
      "  --nodes     N (mesh/tor/wan sizes)        (default 8/16/30)\n"
      "  --traffic   wan | gravity | tor | pod | pfabric (default matches topology)\n"
      "  --snapshots T                             (default 240)\n"
      "  --scheme    figret | dote | teal | des | pred | heuristic |\n"
      "              twostage | oblivious | cope   (default figret)\n"
      "  --epochs    N    --history H    --robust-weight W\n"
      "  --racke     use Racke-style (SMORE) path selection\n"
      "  --stride    evaluate every k-th test snapshot (default 2)\n"
      "  --seed      trace seed (default 42)\n"
      "  --save      path to write the trained FIGRET/DOTE model\n"
      "  --list      print available scenarios and exit\n";
}

net::Graph make_graph(const util::Args& args) {
  const std::string topo = args.get_or("topology", "geant");
  if (topo == "geant") return net::geant();
  if (topo == "mesh")
    return net::full_mesh(static_cast<std::size_t>(args.get_int("nodes", 8)));
  if (topo == "tor") {
    const auto n = static_cast<std::size_t>(args.get_int("nodes", 16));
    return net::random_regular(n, std::max<std::size_t>(3, n / 4), 7);
  }
  if (topo == "wan") {
    const auto n = static_cast<std::size_t>(args.get_int("nodes", 30));
    return net::sparse_wan(n, n + n / 4, 7);
  }
  throw std::invalid_argument("unknown --topology " + topo);
}

traffic::TrafficTrace make_traffic(const util::Args& args, std::size_t nodes) {
  const std::string topo = args.get_or("topology", "geant");
  const std::string kind =
      args.get_or("traffic", topo == "geant" || topo == "wan" ? "wan" : "tor");
  const auto len = static_cast<std::size_t>(args.get_int("snapshots", 240));
  const auto seed = static_cast<std::uint64_t>(args.get_int("seed", 42));
  if (kind == "wan") return traffic::wan_trace(nodes, len, seed);
  if (kind == "gravity") return traffic::gravity_trace(nodes, len, seed);
  if (kind == "tor") return traffic::dc_tor_trace(nodes, len, seed);
  if (kind == "pod") return traffic::dc_pod_trace(nodes, 4, len, seed);
  if (kind == "pfabric") return traffic::pfabric_trace(nodes, len, seed);
  throw std::invalid_argument("unknown --traffic " + kind);
}

}  // namespace

int main(int argc, char** argv) {
  try {
    const util::Args args(argc, argv);
    if (args.get_bool("help") || args.get_bool("list")) {
      print_usage();
      return 0;
    }

    const net::Graph graph = make_graph(args);
    const auto per_pair =
        args.get_bool("racke")
            ? net::racke_style_paths(graph, {})
            : net::all_pairs_k_shortest(graph, 3);
    const te::PathSet paths = te::PathSet::build(graph, per_pair);
    const traffic::TrafficTrace trace = make_traffic(args, graph.num_nodes());

    std::cout << "topology: " << graph.num_nodes() << " nodes / "
              << graph.num_edges() << " arcs; " << paths.num_paths()
              << " candidate paths; trace: " << trace.size()
              << " snapshots\n";

    te::Harness::Options hopt;
    hopt.eval_stride = static_cast<std::size_t>(args.get_int("stride", 2));
    hopt.max_window = 16;
    te::Harness harness(paths, trace, hopt);

    te::FigretOptions fopt;
    fopt.history = static_cast<std::size_t>(args.get_int("history", 8));
    fopt.epochs = static_cast<std::size_t>(args.get_int("epochs", 15));
    fopt.hidden = {128, 128, 128};
    fopt.robust_weight = args.get_double("robust-weight", 4.0);

    const std::string scheme_name = args.get_or("scheme", "figret");
    std::unique_ptr<te::TeScheme> scheme;
    te::SchemeEval result;
    if (scheme_name == "figret" || scheme_name == "dote") {
      auto fig = std::make_unique<te::FigretScheme>(
          paths, scheme_name == "dote" ? te::dote_options(fopt) : fopt,
          scheme_name == "dote" ? "DOTE" : "FIGRET");
      result = harness.evaluate(*fig);
      if (const auto path = args.get("save")) {
        nn::save_mlp_file(fig->model(), *path);
        std::cout << "model saved to " << *path << " ("
                  << fig->model().num_parameters() << " parameters)\n";
      }
      scheme = std::move(fig);
    } else if (scheme_name == "teal") {
      auto s = std::make_unique<te::TealLikeTe>(paths);
      result = harness.evaluate(*s);
      scheme = std::move(s);
    } else if (scheme_name == "des") {
      auto s = std::make_unique<te::DesensitizationTe>(paths);
      result = harness.evaluate(*s);
      scheme = std::move(s);
    } else if (scheme_name == "pred") {
      auto s = std::make_unique<te::PredictionTe>(paths);
      result = harness.evaluate(*s);
      scheme = std::move(s);
    } else if (scheme_name == "heuristic") {
      auto s = std::make_unique<te::HeuristicFTe>(paths);
      result = harness.evaluate(*s);
      scheme = std::move(s);
    } else if (scheme_name == "twostage") {
      auto s = std::make_unique<te::TwoStageTe>(
          paths, std::make_unique<traffic::EwmaPredictor>(0.4));
      result = harness.evaluate(*s);
      scheme = std::move(s);
    } else if (scheme_name == "oblivious") {
      te::ObliviousOptions oopt;
      oopt.time_budget_seconds = args.get_double("budget", 60.0);
      auto s = std::make_unique<te::ObliviousTe>(paths, oopt);
      s->fit(harness.train_trace());
      result = harness.evaluate_config(
          s->result().converged ? "Oblivious" : "Oblivious (budget hit)",
          s->advise({}));
      scheme = std::move(s);
    } else if (scheme_name == "cope") {
      te::CopeOptions copt;
      copt.oblivious.time_budget_seconds = args.get_double("budget", 60.0);
      auto s = std::make_unique<te::CopeTe>(paths, copt);
      s->fit(harness.train_trace());
      result = harness.evaluate_config(
          s->result().converged ? "COPE" : "COPE (budget hit)", s->advise({}));
      scheme = std::move(s);
    } else {
      std::cerr << "unknown --scheme " << scheme_name << "\n";
      print_usage();
      return 2;
    }

    const util::BoxStats s = result.stats();
    util::Table t({"metric", "value"});
    t.add_row({"scheme", result.name});
    t.add_row({"eval snapshots", std::to_string(result.normalized.size())});
    t.add_row({"avg normalized MLU", util::fmt(result.average(), 4)});
    t.add_row({"median", util::fmt(s.median, 4)});
    t.add_row({"p90", util::fmt(s.p90, 4)});
    t.add_row({"p99", util::fmt(s.p99, 4)});
    t.add_row({"max", util::fmt(s.max, 4)});
    t.add_row({"severe (>2x)", std::to_string(result.severe_congestion)});
    t.add_row({"advise time (ms)",
               util::fmt(result.mean_advise_seconds * 1e3, 3)});
    t.print(std::cout);
    return 0;
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
}
