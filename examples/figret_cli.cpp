// figret_cli — run any TE scheme on any built-in scenario from the command
// line; the embedding surface a network operator would script against.
//
//   figret_cli --topology geant --traffic wan --scheme figret \
//              --epochs 20 --robust-weight 4 --save model.bin
//   figret_cli --topology mesh --nodes 8 --traffic tor --scheme des
//   figret_cli --list
//
// Schemes: figret, dote, teal, des, pred, heuristic, twostage, oblivious,
// cope. Topologies: geant, mesh, tor (random regular), wan (sparse).
// Traffic: wan, gravity, tor, pod, pfabric.
#include <iostream>
#include <memory>

#include "net/racke_paths.h"
#include "net/topology.h"
#include "net/yen.h"
#include "nn/serialize.h"
#include "te/cope.h"
#include "te/figret.h"
#include "te/harness.h"
#include "te/heuristic_f.h"
#include "te/lp_schemes.h"
#include "te/oblivious.h"
#include "te/teal_like.h"
#include "te/two_stage.h"
#include "traffic/generators.h"
#include "util/args.h"
#include "util/table.h"

namespace {

using namespace figret;

void print_usage(std::ostream& os) {
  os <<
      "figret_cli — FIGRET traffic engineering playground\n\n"
      "  --topology  geant | mesh | tor | wan      (default geant)\n"
      "  --nodes     N (mesh/tor/wan sizes)        (default 8/16/30)\n"
      "  --traffic   wan | gravity | tor | pod | pfabric (default matches topology)\n"
      "  --snapshots T                             (default 240)\n"
      "  --scheme    figret | dote | teal | des | pred | heuristic |\n"
      "              twostage | oblivious | cope   (default figret)\n"
      "  --epochs    N    --history H    --robust-weight W\n"
      "  --racke     use Racke-style (SMORE) path selection\n"
      "  --stride    evaluate every k-th test snapshot (default 2)\n"
      "  --seed      trace seed (default 42)\n"
      "  --threads   evaluation threads (0 = all cores, 1 = serial; default 0)\n"
      "  --budget    LP time budget in seconds (oblivious/cope; default 60)\n"
      "  --save      path to write the trained FIGRET/DOTE model\n"
      "  --list      print available scenarios and exit\n";
}

/// Thrown for malformed invocations (unknown flag/subcommand, bad value):
/// main prints usage and exits 2, distinct from runtime failures (exit 1).
struct UsageError : std::invalid_argument {
  using std::invalid_argument::invalid_argument;
};

void validate(const util::Args& args) {
  try {
    args.expect_only({"topology", "nodes", "traffic", "snapshots", "scheme",
                      "epochs", "history", "robust-weight", "racke", "stride",
                      "seed", "threads", "budget", "save", "list", "help"});
  } catch (const std::invalid_argument& e) {
    throw UsageError(e.what());
  }
  if (!args.positional().empty())
    throw UsageError("unknown subcommand '" + args.positional().front() +
                     "' (figret_cli takes --flags only)");
}

/// Flag readers that turn malformed values into usage errors (exit 2), and
/// reject negatives for count-valued flags before the size_t cast can wrap.
std::size_t flag_size(const util::Args& args, const std::string& key,
                      long fallback) {
  long v = fallback;
  try {
    v = args.get_int(key, fallback);
  } catch (const std::invalid_argument& e) {
    throw UsageError(e.what());
  }
  if (v < 0)
    throw UsageError("flag --" + key + " must be >= 0, got " +
                     std::to_string(v));
  return static_cast<std::size_t>(v);
}

double flag_double(const util::Args& args, const std::string& key,
                   double fallback) {
  try {
    return args.get_double(key, fallback);
  } catch (const std::invalid_argument& e) {
    throw UsageError(e.what());
  }
}

bool flag_bool(const util::Args& args, const std::string& key) {
  try {
    return args.get_bool(key);
  } catch (const std::invalid_argument& e) {
    // E.g. "--racke extra": the stray token was consumed as the switch's
    // value; running without the switch would silently change the result.
    throw UsageError(e.what());
  }
}

net::Graph make_graph(const util::Args& args) {
  const std::string topo = args.get_or("topology", "geant");
  if (topo == "geant") return net::geant();
  if (topo == "mesh")
    return net::full_mesh(flag_size(args, "nodes", 8));
  if (topo == "tor") {
    const std::size_t n = flag_size(args, "nodes", 16);
    return net::random_regular(n, std::max<std::size_t>(3, n / 4), 7);
  }
  if (topo == "wan") {
    const std::size_t n = flag_size(args, "nodes", 30);
    return net::sparse_wan(n, n + n / 4, 7);
  }
  throw UsageError("unknown --topology " + topo);
}

traffic::TrafficTrace make_traffic(const util::Args& args, std::size_t nodes) {
  const std::string topo = args.get_or("topology", "geant");
  const std::string kind =
      args.get_or("traffic", topo == "geant" || topo == "wan" ? "wan" : "tor");
  const std::size_t len = flag_size(args, "snapshots", 240);
  const auto seed = static_cast<std::uint64_t>(flag_size(args, "seed", 42));
  if (kind == "wan") return traffic::wan_trace(nodes, len, seed);
  if (kind == "gravity") return traffic::gravity_trace(nodes, len, seed);
  if (kind == "tor") return traffic::dc_tor_trace(nodes, len, seed);
  if (kind == "pod") return traffic::dc_pod_trace(nodes, 4, len, seed);
  if (kind == "pfabric") return traffic::pfabric_trace(nodes, len, seed);
  throw UsageError("unknown --traffic " + kind);
}

}  // namespace

int main(int argc, char** argv) {
  try {
    const util::Args args = [&] {
      try {
        return util::Args(argc, argv);
      } catch (const std::invalid_argument& e) {
        // E.g. a bare "--": malformed syntax is a usage error like any other.
        throw UsageError(e.what());
      }
    }();
    validate(args);
    if (flag_bool(args, "help") || flag_bool(args, "list")) {
      print_usage(std::cout);
      return 0;
    }

    const net::Graph graph = make_graph(args);
    const auto per_pair =
        flag_bool(args, "racke")
            ? net::racke_style_paths(graph, {})
            : net::all_pairs_k_shortest(graph, 3);
    const te::PathSet paths = te::PathSet::build(graph, per_pair);
    const traffic::TrafficTrace trace = make_traffic(args, graph.num_nodes());

    std::cout << "topology: " << graph.num_nodes() << " nodes / "
              << graph.num_edges() << " arcs; " << paths.num_paths()
              << " candidate paths; trace: " << trace.size()
              << " snapshots\n";

    te::Harness::Options hopt;
    hopt.eval_stride = flag_size(args, "stride", 2);
    hopt.max_window = 16;
    hopt.threads = flag_size(args, "threads", 0);
    te::Harness harness(paths, trace, hopt);

    te::FigretOptions fopt;
    fopt.history = flag_size(args, "history", 8);
    fopt.epochs = flag_size(args, "epochs", 15);
    fopt.hidden = {128, 128, 128};
    fopt.robust_weight = flag_double(args, "robust-weight", 4.0);

    const std::string scheme_name = args.get_or("scheme", "figret");
    std::unique_ptr<te::TeScheme> scheme;
    te::SchemeEval result;
    if (scheme_name == "figret" || scheme_name == "dote") {
      auto fig = std::make_unique<te::FigretScheme>(
          paths, scheme_name == "dote" ? te::dote_options(fopt) : fopt,
          scheme_name == "dote" ? "DOTE" : "FIGRET");
      result = harness.evaluate(*fig);
      if (const auto path = args.get("save")) {
        nn::save_mlp_file(fig->model(), *path);
        std::cout << "model saved to " << *path << " ("
                  << fig->model().num_parameters() << " parameters)\n";
      }
      scheme = std::move(fig);
    } else if (scheme_name == "teal") {
      auto s = std::make_unique<te::TealLikeTe>(paths);
      result = harness.evaluate(*s);
      scheme = std::move(s);
    } else if (scheme_name == "des") {
      auto s = std::make_unique<te::DesensitizationTe>(paths);
      result = harness.evaluate(*s);
      scheme = std::move(s);
    } else if (scheme_name == "pred") {
      auto s = std::make_unique<te::PredictionTe>(paths);
      result = harness.evaluate(*s);
      scheme = std::move(s);
    } else if (scheme_name == "heuristic") {
      auto s = std::make_unique<te::HeuristicFTe>(paths);
      result = harness.evaluate(*s);
      scheme = std::move(s);
    } else if (scheme_name == "twostage") {
      auto s = std::make_unique<te::TwoStageTe>(
          paths, std::make_unique<traffic::EwmaPredictor>(0.4));
      result = harness.evaluate(*s);
      scheme = std::move(s);
    } else if (scheme_name == "oblivious") {
      te::ObliviousOptions oopt;
      oopt.time_budget_seconds = flag_double(args, "budget", 60.0);
      auto s = std::make_unique<te::ObliviousTe>(paths, oopt);
      s->fit(harness.train_trace());
      result = harness.evaluate_config(
          s->result().converged ? "Oblivious" : "Oblivious (budget hit)",
          s->advise({}));
      scheme = std::move(s);
    } else if (scheme_name == "cope") {
      te::CopeOptions copt;
      copt.oblivious.time_budget_seconds = flag_double(args, "budget", 60.0);
      auto s = std::make_unique<te::CopeTe>(paths, copt);
      s->fit(harness.train_trace());
      result = harness.evaluate_config(
          s->result().converged ? "COPE" : "COPE (budget hit)", s->advise({}));
      scheme = std::move(s);
    } else {
      throw UsageError("unknown --scheme " + scheme_name);
    }

    const util::BoxStats s = result.stats();
    util::Table t({"metric", "value"});
    t.add_row({"scheme", result.name});
    t.add_row({"eval snapshots", std::to_string(result.normalized.size())});
    t.add_row({"avg normalized MLU", util::fmt(result.average(), 4)});
    t.add_row({"median", util::fmt(s.median, 4)});
    t.add_row({"p90", util::fmt(s.p90, 4)});
    t.add_row({"p99", util::fmt(s.p99, 4)});
    t.add_row({"max", util::fmt(s.max, 4)});
    t.add_row({"severe (>2x)", std::to_string(result.severe_congestion)});
    t.add_row({"advise time (ms)",
               util::fmt(result.mean_advise_seconds * 1e3, 3)});
    t.print(std::cout);
    return 0;
  } catch (const UsageError& e) {
    std::cerr << "error: " << e.what() << "\n\n";
    print_usage(std::cerr);
    return 2;
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
}
