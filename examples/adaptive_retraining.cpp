// Adaptive retraining (paper §6 "When should FIGRET be retrained?").
//
// The paper ships periodic retraining and sketches a smarter policy:
// retrain when traffic patterns change significantly or performance
// degrades. This example closes that loop with the RetrainMonitor: FIGRET
// serves a trace whose traffic pattern shifts abruptly halfway through the
// test period; the monitor detects the drift and triggers one retrain,
// restoring performance without any periodic schedule.
#include <iostream>

#include "net/topology.h"
#include "net/yen.h"
#include "te/figret.h"
#include "te/lp_schemes.h"
#include "te/mlu.h"
#include "te/retrain_monitor.h"
#include "traffic/generators.h"
#include "util/table.h"

int main() {
  using namespace figret;

  const std::size_t n = 8;
  const net::Graph graph = net::full_mesh(n);
  const te::PathSet paths =
      te::PathSet::build(graph, net::all_pairs_k_shortest(graph, 3));

  // Phase 1 traffic, then an abrupt regime change (different gravity masses
  // and burstiness) — the situation periodic retraining handles poorly.
  const traffic::TrafficTrace phase1 = traffic::dc_tor_trace(n, 220, 5);
  const traffic::TrafficTrace phase2 = traffic::dc_tor_trace(n, 140, 999);
  traffic::TrafficTrace trace = phase1;
  for (const auto& dm : phase2.snapshots) trace.snapshots.push_back(dm);

  te::FigretOptions fopt;
  fopt.history = 8;
  fopt.hidden = {96, 96};
  fopt.epochs = 12;
  te::FigretScheme figret(paths, fopt);

  const std::size_t initial_train_end = 160;
  figret.fit(trace.slice(0, initial_train_end));

  te::RetrainPolicy policy;
  policy.window = 24;
  policy.trigger_count = 12;
  policy.similarity_threshold = 0.85;
  policy.degradation_threshold = 1.6;
  te::RetrainMonitor monitor(policy);
  monitor.set_reference(trace.slice(0, initial_train_end));

  util::Table t({"epoch range", "avg normalized MLU", "retrained?"});
  double window_sum = 0.0;
  std::size_t window_count = 0, window_begin = initial_train_end;
  std::size_t retrain_count = 0;
  std::string retrain_note = "no";
  std::vector<double> loads;  // reused edge-load scratch across epochs

  for (std::size_t epoch = initial_train_end; epoch < trace.size(); ++epoch) {
    const std::span<const traffic::DemandMatrix> history{
        trace.snapshots.data() + (epoch - fopt.history), fopt.history};
    const te::TeConfig cfg = figret.advise(history);
    const double raw = te::mlu(paths, trace[epoch], cfg, loads);
    const te::MluLpResult oracle = te::solve_mlu_lp(paths, trace[epoch]);
    const double normalized = raw / std::max(oracle.mlu, 1e-12);

    monitor.observe(trace[epoch], normalized);
    window_sum += normalized;
    ++window_count;

    if (monitor.should_retrain() && retrain_count < 3) {
      ++retrain_count;
      retrain_note = "RETRAIN #" + std::to_string(retrain_count);
      // Retrain on the most recent history (including the new regime).
      figret.fit(trace.slice(epoch > 160 ? epoch - 160 : 0, epoch));
      monitor.set_reference(trace.slice(epoch > 64 ? epoch - 64 : 0, epoch));
    }

    if (window_count == 40 || epoch + 1 == trace.size()) {
      t.add_row({std::to_string(window_begin) + "-" + std::to_string(epoch),
                 util::fmt(window_sum / window_count, 4), retrain_note});
      window_sum = 0.0;
      window_count = 0;
      window_begin = epoch + 1;
      retrain_note = "no";
    }
  }
  t.print(std::cout);
  std::cout << "\nThe regime change at epoch " << phase1.size()
            << " degrades the stale model; the drift/degradation monitor "
               "triggers retraining\nand the averages recover — no periodic "
               "schedule required.\n";
  return 0;
}
