// WAN scenario: FIGRET vs DOTE vs Google's Hedging on the GEANT topology
// with realistic WAN traffic (stable with rare unexpected bursts) — the
// situation motivating the paper's introduction.
//
// Prints the normalized-MLU distribution of each scheme and the number of
// burst-induced severe-congestion events.
#include <iostream>

#include "net/topology.h"
#include "net/yen.h"
#include "te/figret.h"
#include "te/harness.h"
#include "te/lp_schemes.h"
#include "traffic/generators.h"
#include "util/table.h"

int main() {
  using namespace figret;

  const net::Graph graph = net::geant();
  const te::PathSet paths =
      te::PathSet::build(graph, net::all_pairs_k_shortest(graph, 3));
  std::cout << "GEANT: " << graph.num_nodes() << " nodes, "
            << graph.num_edges() << " arcs (capacities normalized, core 4x)\n";

  traffic::WanOptions wopt;
  wopt.bursty_fraction = 0.15;
  wopt.burst_probability = 0.02;
  const traffic::TrafficTrace trace = traffic::wan_trace(23, 240, 7, wopt);

  te::Harness::Options hopt;
  hopt.eval_stride = 6;  // LP baselines on GEANT are the slow part
  hopt.max_window = 12;
  te::Harness harness(paths, trace, hopt);

  te::FigretOptions fopt;
  fopt.history = 8;
  fopt.hidden = {96, 96};
  fopt.epochs = 8;

  util::Table t({"scheme", "avg", "median", "p99", "max", "severe(>2x)"});
  auto add = [&](const te::SchemeEval& ev) {
    const util::BoxStats s = ev.stats();
    t.add_row({ev.name, util::fmt(ev.average(), 4), util::fmt(s.median, 4),
               util::fmt(s.p99, 4), util::fmt(s.max, 4),
               std::to_string(ev.severe_congestion)});
  };

  te::FigretScheme figret(paths, fopt);
  add(harness.evaluate(figret));

  te::FigretScheme dote(paths, te::dote_options(fopt), "DOTE");
  add(harness.evaluate(dote));

  te::DesensitizationTe::Options dopt;
  dopt.peak_window = 8;
  te::DesensitizationTe hedging(paths, dopt);
  te::SchemeEval ev = harness.evaluate(hedging);
  ev.name = "Hedging (Jupiter)";
  add(ev);

  t.print(std::cout);
  std::cout << "\nExpected shape: FIGRET ~ DOTE on the median (WAN traffic "
               "is mostly stable),\nbut with a lighter tail; Hedging pays a "
               "higher median for its robustness.\n";
  return 0;
}
