// Figures 16 & 17 (Appendix F): t-SNE visualisation of traffic snapshots for
// the PoD-level and ToR-level Meta DB traces, split into the four quartile
// time segments (0-25%, 25-50%, 50-75%, 75-100%).
//
// Paper observations to reproduce:
//  * ToR-level embeddings are more dispersed than PoD-level (higher
//    dynamism);
//  * both form a single cluster (no drastic temporal drift);
//  * quartile centroids shift more at ToR level than at PoD level.
#include <cmath>
#include <iostream>

#include "bench_common.h"
#include "util/stats.h"
#include "util/table.h"
#include "util/tsne.h"

namespace {

using namespace figret;

struct Embedding {
  std::vector<double> y;   // n x 2
  std::size_t n = 0;
};

Embedding embed(const traffic::TrafficTrace& trace, std::size_t samples) {
  const std::size_t stride = std::max<std::size_t>(1, trace.size() / samples);
  std::vector<double> data;
  std::size_t n = 0;
  const std::size_t dim = traffic::num_pairs(trace.num_nodes);
  for (std::size_t t = 0; t < trace.size(); t += stride) {
    for (std::size_t p = 0; p < dim; ++p) data.push_back(trace[t][p]);
    ++n;
  }
  util::TsneOptions opt;
  opt.iterations = 250;
  opt.perplexity = 15.0;
  return {util::tsne2d(data, n, dim, opt), n};
}

void run(const std::string& name) {
  const bench::Scenario sc = bench::make_scenario(name);
  const Embedding emb = embed(sc.trace, 120);

  // Quartile segment statistics in the embedding.
  util::Table t({"segment", "centroid_x", "centroid_y", "spread"});
  std::vector<std::pair<double, double>> centroids;
  double total_spread = 0.0;
  const std::size_t per = emb.n / 4;
  for (std::size_t q = 0; q < 4; ++q) {
    const std::size_t begin = q * per;
    const std::size_t end = q == 3 ? emb.n : (q + 1) * per;
    double cx = 0.0, cy = 0.0;
    for (std::size_t i = begin; i < end; ++i) {
      cx += emb.y[i * 2];
      cy += emb.y[i * 2 + 1];
    }
    const double cnt = static_cast<double>(end - begin);
    cx /= cnt;
    cy /= cnt;
    double spread = 0.0;
    for (std::size_t i = begin; i < end; ++i)
      spread += std::hypot(emb.y[i * 2] - cx, emb.y[i * 2 + 1] - cy);
    spread /= cnt;
    total_spread += spread / 4.0;
    centroids.emplace_back(cx, cy);
    t.add_row({std::to_string(q * 25) + "-" + std::to_string((q + 1) * 25) +
                   "%",
               util::fmt(cx, 2), util::fmt(cy, 2), util::fmt(spread, 2)});
  }
  double max_centroid_shift = 0.0;
  for (std::size_t a = 0; a < centroids.size(); ++a)
    for (std::size_t b = a + 1; b < centroids.size(); ++b)
      max_centroid_shift = std::max(
          max_centroid_shift,
          std::hypot(centroids[a].first - centroids[b].first,
                     centroids[a].second - centroids[b].second));

  std::cout << "\n--- " << sc.name << " (" << emb.n << " snapshots embedded) ---\n";
  t.print(std::cout);
  bench::json_add_table(sc.name, t);
  std::cout << "mean within-segment spread: " << util::fmt(total_spread, 3)
            << "\nmax centroid shift:         "
            << util::fmt(max_centroid_shift, 3)
            << "\nshift/spread ratio:         "
            << util::fmt(max_centroid_shift / std::max(total_spread, 1e-9), 3)
            << "  (<1 means one cluster, limited drift)\n";
}

}  // namespace

int main() {
  bench::print_header(
      std::cout, "Figures 16/17 — t-SNE of traffic snapshots by quartile",
      "single cluster over time (no drastic drift); ToR more dispersed and "
      "with larger drift than PoD",
      "exact O(n^2) t-SNE on subsampled snapshots");
  run("PoD-DB");
  run("ToR-DB");
  bench::write_json("fig16_17_tsne");
  return 0;
}
