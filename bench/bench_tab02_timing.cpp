// Table 2: calculation time (one TE solve) and precomputation time across
// schemes and topology scales, using google-benchmark for the per-solve
// numbers.
//
// Paper claims to reproduce:
//  * FIGRET's per-solve time is orders of magnitude below the LP schemes
//    (35x-1800x vs Des TE);
//  * Des TE (LP + sensitivity caps) is slower than the plain LP;
//  * Oblivious/COPE fail to complete at ToR scale within budget
//    ("Infeasible"), while GEANT-scale is feasible;
//  * FIGRET's training time is far below the RL-based TEAL-style trainer's.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <deque>
#include <fstream>
#include <iostream>
#include <memory>
#include <sstream>
#include <stdexcept>
#include <string>

#include "bench_common.h"
#include "te/cope.h"
#include "te/figret.h"
#include "te/lp_schemes.h"
#include "te/oblivious.h"
#include "te/teal_like.h"
#include "util/json.h"
#include "util/parallel.h"
#include "util/table.h"

namespace {

using namespace figret;
using Clock = std::chrono::steady_clock;

struct TimedScenario {
  bench::Scenario sc;
  std::unique_ptr<te::FigretScheme> figret;
  std::vector<double> des_caps;
  double figret_train_seconds = 0.0;
  double teal_train_seconds = 0.0;
};

// Deque: schemes hold pointers into their scenario's PathSet, so elements
// must never relocate once constructed.
std::deque<TimedScenario>& scenarios() {
  static std::deque<TimedScenario> all;
  return all;
}

double seconds_since(Clock::time_point t0) {
  return std::chrono::duration<double>(Clock::now() - t0).count();
}

void bench_figret_advise(benchmark::State& state, std::size_t idx) {
  TimedScenario& ts = scenarios()[idx];
  const std::size_t window = ts.figret->history_window();
  const std::span<const traffic::DemandMatrix> history{
      ts.sc.trace.snapshots.data() + (ts.sc.trace.size() - window), window};
  for (auto _ : state) {
    benchmark::DoNotOptimize(ts.figret->advise(history));
  }
}

void bench_lp_solve(benchmark::State& state, std::size_t idx) {
  TimedScenario& ts = scenarios()[idx];
  const auto& dm = ts.sc.trace.snapshots.back();
  for (auto _ : state) {
    benchmark::DoNotOptimize(te::solve_mlu_lp(ts.sc.ps, dm));
  }
}

void bench_des_lp_solve(benchmark::State& state, std::size_t idx) {
  TimedScenario& ts = scenarios()[idx];
  const auto& dm = ts.sc.trace.snapshots.back();
  for (auto _ : state) {
    benchmark::DoNotOptimize(te::solve_mlu_lp(ts.sc.ps, dm, &ts.des_caps));
  }
}

}  // namespace

int main(int argc, char** argv) {
  bench::print_header(
      std::cout, "Table 2 — calculation and precomputation time",
      "FIGRET solves 35x-1800x faster than Des TE; Oblivious/COPE "
      "infeasible at ToR scale",
      "ToR fabrics scaled (paper: 155/324 nodes); budgets replace the "
      "paper's 1-day cap");

  const bench::TrainProfile prof = bench::train_profile();
  for (const char* name : {"GEANT", "ToR-DB", "ToR-WEB"}) {
    // Emplace first: the trained scheme keeps a pointer to ts.sc.ps, so the
    // scenario must already live at its final address.
    TimedScenario& ts = scenarios().emplace_back();
    ts.sc = bench::make_scenario(name);

    te::FigretOptions fopt;
    fopt.history = prof.history;
    fopt.hidden = prof.hidden;
    fopt.epochs = prof.epochs;
    fopt.robust_weight = prof.robust_weight;
    ts.figret = std::make_unique<te::FigretScheme>(ts.sc.ps, fopt);
    const auto t0 = Clock::now();
    ts.figret->fit(ts.sc.trace.slice(0, ts.sc.trace.size() * 3 / 4));
    ts.figret_train_seconds = seconds_since(t0);

    // TEAL-style trainer (per-demand net), for the precomputation column.
    te::TealOptions topt;
    topt.hidden = prof.hidden;
    topt.epochs = prof.epochs;
    te::TealLikeTe teal(ts.sc.ps, topt);
    const auto t1 = Clock::now();
    teal.fit(ts.sc.trace.slice(0, ts.sc.trace.size() * 3 / 4));
    ts.teal_train_seconds = seconds_since(t1);

    ts.des_caps = te::sensitivity_caps(
        ts.sc.ps, std::vector<double>(ts.sc.ps.num_pairs(), 0.5));
  }

  for (std::size_t i = 0; i < scenarios().size(); ++i) {
    const std::string& n = scenarios()[i].sc.name;
    benchmark::RegisterBenchmark(("FIGRET_advise/" + n).c_str(),
                                 bench_figret_advise, i)
        ->Unit(benchmark::kMillisecond);
    benchmark::RegisterBenchmark(("LP_solve/" + n).c_str(), bench_lp_solve, i)
        ->Unit(benchmark::kMillisecond);
    benchmark::RegisterBenchmark(("DesTE_LP_solve/" + n).c_str(),
                                 bench_des_lp_solve, i)
        ->Unit(benchmark::kMillisecond);
  }
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();

  // Precomputation columns of Table 2. FIGRET_BENCH_BUDGET (seconds)
  // overrides the Oblivious/COPE time budget so CI smoke runs don't spend
  // 2 x 60s spinning to print "Infeasible (budget)".
  std::cout << "\nPrecomputation (training / cutting-plane) time:\n";
  util::Table t({"network", "FIGRET train (s)", "TEAL-like train (s)",
                 "Oblivious", "COPE"});
  double budget = bench::full_mode() ? 600.0 : 60.0;
  if (const char* env = std::getenv("FIGRET_BENCH_BUDGET")) {
    char* end = nullptr;
    const double v = std::strtod(env, &end);
    if (end != env && *end == '\0' && v >= 0.0) budget = v;
  }
  // Machine-readable record of the tables this binary computes itself (the
  // per-solve microbenchmarks are available via --benchmark_format=json).
  util::Json jout = util::Json::object();
  jout.set("bench", "tab02_timing").set("full_mode", bench::full_mode());
  util::Json jprecomp = util::Json::array();

  for (auto& ts : scenarios()) {
    std::string obl_cell = "-", cope_cell = "-";
    if (ts.sc.ps.num_nodes() <= 30) {
      te::ObliviousOptions oopt;
      oopt.time_budget_seconds = budget;
      const auto t0 = Clock::now();
      const te::ObliviousResult r = te::solve_oblivious(ts.sc.ps, oopt);
      obl_cell = r.converged
                     ? "Feasible (" + util::fmt(seconds_since(t0), 1) + "s)"
                     : "Infeasible (budget)";
      te::CopeOptions copt;
      copt.oblivious = oopt;
      const auto t1 = Clock::now();
      const te::CopeResult c =
          te::solve_cope(ts.sc.ps, ts.sc.trace.slice(0, 40), copt);
      cope_cell = c.converged
                      ? "Feasible (" + util::fmt(seconds_since(t1), 1) + "s)"
                      : "Infeasible (budget)";
    } else {
      obl_cell = "Infeasible (scale)";
      cope_cell = "Infeasible (scale)";
    }
    t.add_row({ts.sc.name, util::fmt(ts.figret_train_seconds, 2),
               util::fmt(ts.teal_train_seconds, 2), obl_cell, cope_cell});
    jprecomp.push(util::Json::object()
                      .set("network", ts.sc.name)
                      .set("figret_train_seconds", ts.figret_train_seconds)
                      .set("teal_train_seconds", ts.teal_train_seconds)
                      .set("oblivious", obl_cell)
                      .set("cope", cope_cell));
  }
  t.print(std::cout);
  jout.set("precomputation", std::move(jprecomp));

  // LP engine comparison on the omniscient-normalizer sweep: the dense
  // tableau oracle vs the sparse revised simplex, cold per snapshot vs
  // warm-started from the previous snapshot's optimal basis (consecutive
  // snapshots share the constraint structure, so the basis usually re-primes
  // in a handful of pivots). All three run serially over the same snapshots
  // so wall-clock and pivot counts are directly comparable.
  std::cout << "\nLP engines on the omniscient-normalizer sweep "
            << "(serial, same snapshots):\n";
  // "warm hits" counts accepted probes over probes actually made (the first
  // solve of a chain has no basis to probe, and the handle's backoff skips
  // probes after persistent misses — neither is a rejection).
  util::Table et({"network", "solves", "dense (s)", "dense pivots",
                  "revised (s)", "revised pivots", "warm (s)", "warm pivots",
                  "warm hits/probes"});
  util::Json jengines = util::Json::array();
  for (auto& ts : scenarios()) {
    const std::size_t count =
        std::min<std::size_t>(bench::full_mode() ? 60 : 24,
                              ts.sc.trace.size());
    const std::size_t begin = ts.sc.trace.size() - count;
    struct EngineRun {
      double seconds = 0.0;
      std::size_t pivots = 0;
    };
    auto sweep = [&](const lp::SolverOptions& opt,
                     lp::WarmStart* warm) {
      EngineRun run;
      const auto t0 = Clock::now();
      for (std::size_t t = begin; t < ts.sc.trace.size(); ++t) {
        const te::MluLpResult res = te::solve_mlu_lp(
            ts.sc.ps, ts.sc.trace[t], nullptr, nullptr, &opt, warm);
        if (!res.optimal()) throw std::runtime_error("engine sweep LP failed");
        run.pivots += res.pivots;
      }
      run.seconds = seconds_since(t0);
      return run;
    };
    lp::SolverOptions dense_opt;
    dense_opt.engine = lp::Engine::kDenseTableau;
    lp::SolverOptions revised_opt;  // default: kRevisedSparse
    const EngineRun dense = sweep(dense_opt, nullptr);
    const EngineRun cold = sweep(revised_opt, nullptr);
    lp::WarmStart warm;
    const EngineRun hot = sweep(revised_opt, &warm);
    et.add_row({ts.sc.name, std::to_string(count),
                util::fmt(dense.seconds, 3), std::to_string(dense.pivots),
                util::fmt(cold.seconds, 3), std::to_string(cold.pivots),
                util::fmt(hot.seconds, 3), std::to_string(hot.pivots),
                std::to_string(warm.hits()) + "/" +
                    std::to_string(warm.hits() + warm.misses())});
    jengines.push(
        util::Json::object()
            .set("network", ts.sc.name)
            .set("solves", static_cast<std::int64_t>(count))
            .set("dense_seconds", dense.seconds)
            .set("dense_pivots", static_cast<std::int64_t>(dense.pivots))
            .set("revised_seconds", cold.seconds)
            .set("revised_pivots", static_cast<std::int64_t>(cold.pivots))
            .set("warm_seconds", hot.seconds)
            .set("warm_pivots", static_cast<std::int64_t>(hot.pivots))
            .set("warm_hits", static_cast<std::int64_t>(warm.hits()))
            .set("warm_misses", static_cast<std::int64_t>(warm.misses())));
  }
  et.print(std::cout);
  jout.set("lp_engine_sweep", std::move(jengines));

  // RHS-only perturbation chains (failure-masked capacities): the workload
  // the dual simplex exists for. The LP is built once per network; each
  // step rewrites only capacity-row right-hand sides — structure, hence the
  // warm-start signature, never changes — so the previous optimal basis
  // stays dual feasible and every warm resolve must route through the dual
  // simplex (or stay primal feasible) with zero cold fallbacks. The bench
  // enforces that invariant: any fallback past the priming solve is a bug.
  std::cout << "\nRHS-only perturbation chains "
            << "(failure-masked capacities, serial):\n";
  util::Table rt({"network", "steps", "cold (s)", "cold pivots",
                  "dual-warm (s)", "warm pivots", "dual pivots", "fallbacks",
                  "speedup"});
  util::Json jchain = util::Json::array();
  struct ChainRecord {
    std::string network;
    std::size_t warm_pivots = 0;
  };
  std::vector<ChainRecord> chain_records;
  bool chain_failed = false;
  for (auto& ts : scenarios()) {
    const auto& dm = ts.sc.trace.snapshots.back();
    lp::LpProblem prob = te::build_mlu_lp(ts.sc.ps, dm);
    const std::size_t u_var = prob.num_variables() - 1;
    // Capacity rows (kLessEq) and their capacities (the -c_e term on U).
    std::vector<std::size_t> cap_rows;
    std::vector<double> cap_of;
    for (std::size_t r = 0; r < prob.rows().size(); ++r) {
      const auto& row = prob.rows()[r];
      if (row.rel != lp::Relation::kLessEq) continue;
      double ce = 0.0;
      for (const auto& term : row.terms)
        if (term.var == u_var) ce = -term.coeff;
      cap_rows.push_back(r);
      cap_of.push_back(ce);
    }
    const te::MluLpResult base = te::solve_mlu_lp(ts.sc.ps, dm);
    if (!base.optimal()) throw std::runtime_error("rhs chain: base LP failed");
    const double mlu0 = std::max(base.mlu, 1e-9);

    const std::size_t steps = bench::full_mode() ? 16 : 12;
    // Every step keeps every capacity rhs *strictly negative*: a tiny
    // uniform tightening plus a ~10% failure mask of up to 5% of c_e * MLU.
    // Strict negativity matters — the engines normalize rows to rhs >= 0 by
    // negation, so a row crossing zero would flip its relation and break
    // the chain's signature compatibility. Deterministic splitmix/LCG per
    // (step, row) keeps runs reproducible across machines.
    auto perturb = [&](std::size_t step) {
      std::uint64_t s = 0x9e3779b97f4a7c15ULL * (step + 1);
      for (std::size_t k = 0; k < cap_rows.size(); ++k) {
        s = s * 6364136223846793005ULL + 1442695040888963407ULL;
        const double u01 =
            static_cast<double>((s >> 11) & 0x1fffff) / 2097151.0;
        double h = 1e-6 * cap_of[k] * mlu0;
        if (u01 < 0.1) h += (u01 * 10.0) * 0.05 * cap_of[k] * mlu0;
        prob.set_rhs(cap_rows[k], -h);
      }
    };

    lp::SolverOptions revised_opt;
    struct ChainRun {
      double seconds = 0.0;
      std::size_t pivots = 0, dual_pivots = 0, fallbacks = 0, warm_used = 0,
                  dual_used = 0;
    };
    auto chain = [&](bool warm_chain) {
      ChainRun run;
      lp::WarmStart warm;
      const auto t0 = Clock::now();
      for (std::size_t step = 0; step < steps; ++step) {
        perturb(step);
        lp::SolveStats st;
        const lp::LpResult res = lp::solve_with(
            prob, revised_opt, warm_chain ? &warm : nullptr, &st);
        if (!res.optimal()) throw std::runtime_error("rhs chain LP failed");
        run.pivots += st.pivots;
        run.dual_pivots += st.dual_pivots;
        if (st.warm_start_used) ++run.warm_used;
        if (st.dual_simplex_used) ++run.dual_used;
        if (st.fallback != lp::WarmFallback::kNone) ++run.fallbacks;
      }
      run.seconds = seconds_since(t0);
      return run;
    };
    const ChainRun cold = chain(false);
    const ChainRun hot = chain(true);
    rt.add_row({ts.sc.name, std::to_string(steps), util::fmt(cold.seconds, 3),
                std::to_string(cold.pivots), util::fmt(hot.seconds, 3),
                std::to_string(hot.pivots), std::to_string(hot.dual_pivots),
                std::to_string(hot.fallbacks),
                util::fmt(hot.seconds > 0.0 ? cold.seconds / hot.seconds : 0.0,
                          2)});
    jchain.push(
        util::Json::object()
            .set("network", ts.sc.name)
            .set("steps", static_cast<std::int64_t>(steps))
            .set("capacity_rows", static_cast<std::int64_t>(cap_rows.size()))
            .set("cold_seconds", cold.seconds)
            .set("cold_pivots", static_cast<std::int64_t>(cold.pivots))
            .set("dual_warm_seconds", hot.seconds)
            .set("warm_pivots", static_cast<std::int64_t>(hot.pivots))
            .set("dual_pivots", static_cast<std::int64_t>(hot.dual_pivots))
            .set("warm_used_steps", static_cast<std::int64_t>(hot.warm_used))
            .set("dual_steps", static_cast<std::int64_t>(hot.dual_used))
            .set("cold_fallbacks", static_cast<std::int64_t>(hot.fallbacks))
            .set("speedup_vs_cold",
                 hot.seconds > 0.0 ? cold.seconds / hot.seconds : 0.0));
    chain_records.push_back({ts.sc.name, hot.pivots});
    if (hot.fallbacks != 0 || hot.warm_used != steps - 1) {
      chain_failed = true;
      std::cout << "ERROR: " << ts.sc.name << " RHS chain fell back cold ("
                << hot.fallbacks << " fallbacks, " << hot.warm_used << "/"
                << (steps - 1) << " warm resolves)\n";
    }
  }
  rt.print(std::cout);
  jout.set("rhs_chain", std::move(jchain));

  // Parallel evaluation engine: the omniscient-normalizer LP solves are the
  // dominant cost of a full harness evaluation; time them serial vs pooled.
  // Per-snapshot results are bit-identical (tests/test_harness.cpp asserts
  // it); only wall-clock changes with the thread count.
  const std::size_t width = util::default_threads();
  std::cout << "\nHarness omniscient normalizer, serial vs " << width
            << " thread(s) [FIGRET_THREADS overrides]:\n";
  util::Table pt({"network", "snapshots", "serial (s)", "parallel (s)",
                  "speedup"});
  util::Json jparallel = util::Json::array();
  for (auto& ts : scenarios()) {
    te::Harness::Options hopt;
    hopt.eval_stride = ts.sc.eval_stride;
    hopt.threads = 1;
    te::Harness serial(ts.sc.ps, ts.sc.trace, hopt);
    const auto t0 = Clock::now();
    serial.omniscient();
    const double serial_s = seconds_since(t0);

    hopt.threads = 0;  // process-wide pool
    te::Harness pooled(ts.sc.ps, ts.sc.trace, hopt);
    const auto t1 = Clock::now();
    pooled.omniscient();
    const double pooled_s = seconds_since(t1);

    pt.add_row({ts.sc.name, std::to_string(serial.eval_indices().size()),
                util::fmt(serial_s, 2), util::fmt(pooled_s, 2),
                util::fmt(pooled_s > 0.0 ? serial_s / pooled_s : 0.0, 2)});
    jparallel.push(
        util::Json::object()
            .set("network", ts.sc.name)
            .set("snapshots",
                 static_cast<std::int64_t>(serial.eval_indices().size()))
            .set("serial_seconds", serial_s)
            .set("parallel_seconds", pooled_s)
            .set("threads", static_cast<std::int64_t>(width)));
  }
  pt.print(std::cout);
  jout.set("parallel_normalizer", std::move(jparallel));
  jout.write_file("BENCH_tab02_timing.json", 2);
  std::cout << "\nmachine-readable results: BENCH_tab02_timing.json\n";

  // CI regression smoke: FIGRET_BENCH_REFERENCE points at a committed
  // BENCH_tab02_timing.json; fail when a dual-warm chain now needs more
  // than 3x the reference pivot count (+ a small grace for tiny counts).
  // util::Json is a writer, so the reference is string-scanned: locate the
  // "rhs_chain" array, then each network's "warm_pivots" within it.
  int rc = chain_failed ? 1 : 0;
  if (const char* ref_path = std::getenv("FIGRET_BENCH_REFERENCE")) {
    std::ifstream in(ref_path);
    if (!in) {
      std::cout << "ERROR: cannot read bench reference " << ref_path << "\n";
      rc = 1;
    } else {
      std::stringstream buf;
      buf << in.rdbuf();
      const std::string ref = buf.str();
      const std::size_t chain_at = ref.find("\"rhs_chain\"");
      for (const ChainRecord& cur : chain_records) {
        std::size_t ref_pivots = static_cast<std::size_t>(-1);
        if (chain_at != std::string::npos) {
          const std::size_t net_at = ref.find(
              "\"network\": \"" + cur.network + "\"", chain_at);
          if (net_at != std::string::npos) {
            const std::size_t piv_at = ref.find("\"warm_pivots\":", net_at);
            if (piv_at != std::string::npos)
              ref_pivots = static_cast<std::size_t>(
                  std::strtoull(ref.c_str() + piv_at + 14, nullptr, 10));
          }
        }
        if (ref_pivots == static_cast<std::size_t>(-1)) {
          std::cout << "ERROR: reference has no rhs_chain warm_pivots for "
                    << cur.network << "\n";
          rc = 1;
        } else if (cur.warm_pivots > 3 * ref_pivots + 48) {
          std::cout << "ERROR: " << cur.network
                    << " dual-warm pivots regressed: " << cur.warm_pivots
                    << " vs reference " << ref_pivots << "\n";
          rc = 1;
        } else {
          std::cout << "reference check " << cur.network << ": warm pivots "
                    << cur.warm_pivots << " vs reference " << ref_pivots
                    << " — ok\n";
        }
      }
    }
  }
  return rc;
}
