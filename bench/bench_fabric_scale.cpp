// Fabric scale: hot-path kernel throughput swept from a WAN (GEANT) up to
// k-ary fat trees (k=8/16 by default, k=32 with FIGRET_BENCH_FULL=1).
//
// Three measurements per topology, all dimensionless where it matters so the
// committed reference JSON transfers across machines:
//   1. edge_loads snapshots/sec: the pre-optimization path-major kernel
//      (edge_loads_reference_into) vs the fused pair-major O(nnz) kernel
//      (edge_loads_into) vs the chunked-parallel kernel;
//   2. batched MLP forward rows/sec: the tiled/SIMD matmul_t under
//      KernelMode::kTiled vs the pre-optimization kernels under
//      KernelMode::kReference, on a per-source-shard FIGRET-style model
//      (a full fat-tree-k16 output layer would be ~836 MB of weights — real
//      deployments shard the model per source pod, and so does the bench);
//   3. p50/p99 scoring latency (sparse demand -> MLU via the fused kernel).
//
// The PR's acceptance bar lives here: on fat-tree k=16 both the fused
// edge_loads kernel and the tiled batched forward must be >= 3x their
// pre-PR reference kernels. The binary exits non-zero when the bar is
// missed, and — when FIGRET_BENCH_REFERENCE points at a committed
// BENCH_fabric_scale.json — when a speedup regresses to less than 40% of
// the reference ratio.
#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <limits>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "bench_common.h"
#include "linalg/matrix.h"
#include "net/fabric.h"
#include "nn/mlp.h"
#include "te/mlu.h"
#include "te/pathset.h"
#include "traffic/demand.h"
#include "traffic/generators.h"
#include "util/json.h"
#include "util/latency.h"
#include "util/parallel.h"
#include "util/table.h"

namespace {

using namespace figret;
using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point t0) {
  return std::chrono::duration<double>(Clock::now() - t0).count();
}

// Timed loops fold a checksum in here so the optimizer cannot discard them.
double g_sink = 0.0;

struct Topo {
  std::string name;
  net::Graph graph;
  te::PathSet ps;
  std::vector<traffic::DemandMatrix> snaps;
  /// MLP width: pairs per per-source shard (all pairs on the WAN).
  std::size_t shard_pairs = 0;
  bool fabric = false;
};

Topo make_geant(std::size_t snapshots) {
  bench::Scenario sc = bench::make_scenario("GEANT");
  Topo t;
  t.name = "GEANT";
  t.graph = std::move(sc.graph);
  t.ps = std::move(sc.ps);
  const std::size_t keep = std::min(snapshots, sc.trace.size());
  t.snaps.assign(sc.trace.snapshots.end() - keep, sc.trace.snapshots.end());
  t.shard_pairs = t.ps.num_pairs();
  return t;
}

Topo make_fat_tree(std::size_t k, std::size_t snapshots, std::uint64_t seed) {
  const net::FatTree ft = net::fat_tree(k);
  Topo t;
  t.name = "fat-tree-k" + std::to_string(k);
  t.ps = te::PathSet::build(ft.graph, net::fat_tree_paths(ft, 4));
  t.graph = ft.graph;
  traffic::FabricOptions fopt;
  fopt.active_fraction = 0.01;
  t.snaps = traffic::fabric_trace(ft.graph.num_nodes(), snapshots, seed, fopt)
                .snapshots;
  t.shard_pairs = t.ps.num_pairs() / k;
  t.fabric = true;
  return t;
}

struct LoopStats {
  double seconds = 0.0;
  double best_pass = 0.0;  // fastest single pass observed
  std::size_t passes = 0;
};

// Repeats `body` (one full pass over the snapshot set) until both floors are
// met, so fast kernels get enough passes for a stable rate and slow ones are
// not re-run forever. Each pass is timed individually and the fastest kept:
// on a time-shared machine the *minimum* pass time is the robust estimate of
// kernel speed (any quiet scheduling window reveals it), while averages are
// poisoned by whatever else ran during the window.
template <typename F>
LoopStats run_passes(F&& body, double min_seconds, std::size_t min_passes) {
  LoopStats st;
  st.best_pass = std::numeric_limits<double>::infinity();
  const auto t0 = Clock::now();
  do {
    const auto p0 = Clock::now();
    body();
    st.best_pass = std::min(st.best_pass, seconds_since(p0));
    ++st.passes;
    st.seconds = seconds_since(t0);
  } while (st.passes < min_passes || st.seconds < min_seconds);
  return st;
}

struct EdgeLoadsResult {
  double ref_per_sec = 0.0;
  double fused_per_sec = 0.0;
  double parallel_per_sec = 0.0;
  double score_p50_us = 0.0;
  double score_p99_us = 0.0;
};

// Measurement rounds alternate between the compared kernels and each takes
// its best (max) rate over best-pass times, so slow drift in machine load
// cancels out of the speedup ratios instead of landing on whichever kernel
// ran second.
constexpr int kRounds = 3;

EdgeLoadsResult measure_edge_loads(const Topo& t, double min_seconds) {
  EdgeLoadsResult r;
  const te::TeConfig cfg = te::uniform_config(t.ps);
  std::vector<double> out;
  te::EdgeLoadScratch scratch;
  const double round_seconds = min_seconds / kRounds;
  const auto rate = [&](const LoopStats& st) {
    return st.best_pass > 0.0
               ? static_cast<double>(t.snaps.size()) / st.best_pass
               : 0.0;
  };

  for (int round = 0; round < kRounds; ++round) {
    const LoopStats ref = run_passes(
        [&] {
          for (const auto& dm : t.snaps) {
            te::edge_loads_reference_into(t.ps, dm, cfg, out);
            g_sink += out.front() + out.back();
          }
        },
        round_seconds, 1);
    r.ref_per_sec = std::max(r.ref_per_sec, rate(ref));

    const LoopStats fused = run_passes(
        [&] {
          for (const auto& dm : t.snaps) {
            te::edge_loads_into(t.ps, dm, cfg, out);
            g_sink += out.front() + out.back();
          }
        },
        round_seconds, 1);
    r.fused_per_sec = std::max(r.fused_per_sec, rate(fused));

    const LoopStats par = run_passes(
        [&] {
          for (const auto& dm : t.snaps) {
            te::edge_loads_parallel_into(t.ps, dm, cfg, scratch, out);
            g_sink += out.front() + out.back();
          }
        },
        round_seconds, 1);
    r.parallel_per_sec = std::max(r.parallel_per_sec, rate(par));
  }

  // Serving-style scoring latency: sparse demand -> MLU through the fused
  // kernel with reused scratch (the allocation-free hot path).
  util::LatencyHistogram hist;
  std::vector<double> edge_scratch;
  run_passes(
      [&] {
        for (const auto& dm : t.snaps) {
          const auto s0 = Clock::now();
          g_sink += te::mlu(t.ps, dm, cfg, edge_scratch);
          hist.record(seconds_since(s0));
        }
      },
      min_seconds, 2);
  r.score_p50_us = hist.percentile(50.0) * 1e6;
  r.score_p99_us = hist.percentile(99.0) * 1e6;
  return r;
}

struct MlpResult {
  std::size_t input = 0, output = 0, batch = 0;
  double ref_rows_per_sec = 0.0;
  double tiled_rows_per_sec = 0.0;
  double tiled_p50_ms = 0.0;
  double tiled_p99_ms = 0.0;
};

MlpResult measure_mlp(const Topo& t, double min_seconds) {
  MlpResult r;
  constexpr std::size_t kHistory = 4;
  constexpr std::size_t kBatch = 8;
  r.batch = kBatch;
  r.input = kHistory * t.shard_pairs;
  // Output = split ratios for the shard's candidate paths (pair ids are
  // contiguous, so a per-source shard is a prefix of the pair space).
  r.output = 0;
  for (std::size_t pr = 0; pr < t.shard_pairs; ++pr)
    r.output += t.ps.pair_size(pr);

  nn::MlpConfig cfg;
  cfg.layer_sizes = {r.input, 128, 128, r.output};
  // Identity output head: the output nonlinearity is identical scalar work
  // in both kernel modes (at k=16 it is ~170k std::exp calls per batch) and
  // would dilute the matmul-kernel comparison this bench exists to make.
  cfg.output = nn::OutputActivation::kIdentity;
  cfg.seed = 7;
  const nn::Mlp mlp(cfg);

  // Batch rows are real (sparse) demand windows scattered into dense input,
  // exactly like FigretScheme::build_input_into.
  linalg::Matrix x(kBatch, r.input);
  for (std::size_t b = 0; b < kBatch; ++b)
    for (std::size_t h = 0; h < kHistory; ++h) {
      const auto& dm = t.snaps[(b + h) % t.snaps.size()];
      dm.for_each_active([&](std::size_t pair, double v) {
        if (pair < t.shard_pairs) x(b, h * t.shard_pairs + pair) = v;
      });
    }

  nn::MlpBatchWorkspace ws;
  util::LatencyHistogram hist;
  const auto run_mode = [&](linalg::KernelMode mode, bool record) {
    linalg::set_kernel_mode(mode);
    const LoopStats st = run_passes(
        [&] {
          const auto s0 = Clock::now();
          const linalg::Matrix& y = mlp.forward_batch(x, ws);
          if (record) hist.record(seconds_since(s0));
          g_sink += y(0, 0) + y(kBatch - 1, r.output - 1);
        },
        min_seconds / kRounds, 2);
    linalg::set_kernel_mode(linalg::KernelMode::kTiled);
    return st.best_pass > 0.0 ? static_cast<double>(kBatch) / st.best_pass
                              : 0.0;
  };
  for (int round = 0; round < kRounds; ++round) {
    r.tiled_rows_per_sec = std::max(
        r.tiled_rows_per_sec, run_mode(linalg::KernelMode::kTiled, true));
    r.ref_rows_per_sec = std::max(
        r.ref_rows_per_sec, run_mode(linalg::KernelMode::kReference, false));
  }
  r.tiled_p50_ms = hist.percentile(50.0) * 1e3;
  r.tiled_p99_ms = hist.percentile(99.0) * 1e3;
  return r;
}

double ratio(double num, double den) { return den > 0.0 ? num / den : 0.0; }

/// String-scans a committed BENCH_fabric_scale.json (util::Json is a writer)
/// for `"name": "<topo>"` followed by `"<key>": <value>`.
double reference_value(const std::string& ref, const std::string& topo,
                       const std::string& key) {
  const std::size_t at = ref.find("\"name\": \"" + topo + "\"");
  if (at == std::string::npos) return -1.0;
  const std::string needle = "\"" + key + "\":";
  const std::size_t val_at = ref.find(needle, at);
  if (val_at == std::string::npos) return -1.0;
  return std::strtod(ref.c_str() + val_at + needle.size(), nullptr);
}

}  // namespace

int main() {
  bench::print_header(
      std::cout, "Fabric scale — hot-path kernels from GEANT to fat trees",
      "fused O(nnz) edge_loads and tiled batched MLP forward are each >= 3x "
      "the pre-optimization kernels at fat-tree k=16",
      "per-source-shard MLP (full k=16 model would be ~836 MB); k=32 behind "
      "FIGRET_BENCH_FULL=1");

  const bool full = bench::full_mode();
  const double min_seconds = full ? 0.9 : 0.45;
  std::vector<Topo> topos;
  topos.push_back(make_geant(full ? 64 : 32));
  topos.push_back(make_fat_tree(8, full ? 64 : 32, 21));
  topos.push_back(make_fat_tree(16, full ? 48 : 24, 22));
  if (full) topos.push_back(make_fat_tree(32, 12, 23));

  util::Json jout = util::Json::object();
  jout.set("bench", "fabric_scale")
      .set("full_mode", full)
      .set("threads", util::default_threads());
  util::Json jtopos = util::Json::array();

  util::Table lt({"topology", "pairs", "paths", "nnz/snap", "ref snap/s",
                  "fused snap/s", "par snap/s", "fused x", "par x",
                  "score p99 (us)"});
  util::Table mt({"topology", "mlp in", "mlp out", "ref rows/s",
                  "tiled rows/s", "tiled x", "fwd p99 (ms)"});

  int rc = 0;
  struct Gate {
    std::string topo;
    double edge_speedup = 0.0, mlp_speedup = 0.0;
  };
  std::vector<Gate> gates;

  for (const Topo& t : topos) {
    double nnz = 0.0;
    for (const auto& dm : t.snaps) nnz += static_cast<double>(dm.nnz());
    nnz /= static_cast<double>(t.snaps.size());

    const EdgeLoadsResult el = measure_edge_loads(t, min_seconds);
    const MlpResult ml = measure_mlp(t, min_seconds);
    const double fused_x = ratio(el.fused_per_sec, el.ref_per_sec);
    const double par_x = ratio(el.parallel_per_sec, el.ref_per_sec);
    const double mlp_x = ratio(ml.tiled_rows_per_sec, ml.ref_rows_per_sec);

    lt.add_row({t.name, std::to_string(t.ps.num_pairs()),
                std::to_string(t.ps.num_paths()), util::fmt(nnz, 0),
                util::fmt(el.ref_per_sec, 1), util::fmt(el.fused_per_sec, 1),
                util::fmt(el.parallel_per_sec, 1), util::fmt(fused_x, 2),
                util::fmt(par_x, 2), util::fmt(el.score_p99_us, 1)});
    mt.add_row({t.name, std::to_string(ml.input), std::to_string(ml.output),
                util::fmt(ml.ref_rows_per_sec, 1),
                util::fmt(ml.tiled_rows_per_sec, 1), util::fmt(mlp_x, 2),
                util::fmt(ml.tiled_p99_ms, 3)});

    jtopos.push(
        util::Json::object()
            .set("name", t.name)
            .set("nodes", t.graph.num_nodes())
            .set("arcs", t.graph.num_edges())
            .set("pairs", t.ps.num_pairs())
            .set("paths", t.ps.num_paths())
            .set("snapshots", t.snaps.size())
            .set("mean_nnz", nnz)
            .set("edge_loads_reference_snapshots_per_sec", el.ref_per_sec)
            .set("edge_loads_fused_snapshots_per_sec", el.fused_per_sec)
            .set("edge_loads_parallel_snapshots_per_sec", el.parallel_per_sec)
            .set("edge_loads_speedup", fused_x)
            .set("edge_loads_parallel_speedup", par_x)
            .set("score_p50_us", el.score_p50_us)
            .set("score_p99_us", el.score_p99_us)
            .set("mlp_input", ml.input)
            .set("mlp_output", ml.output)
            .set("mlp_batch", ml.batch)
            .set("mlp_reference_rows_per_sec", ml.ref_rows_per_sec)
            .set("mlp_tiled_rows_per_sec", ml.tiled_rows_per_sec)
            .set("mlp_speedup", mlp_x)
            .set("mlp_forward_p50_ms", ml.tiled_p50_ms)
            .set("mlp_forward_p99_ms", ml.tiled_p99_ms));
    if (t.fabric) gates.push_back({t.name, fused_x, mlp_x});
  }

  std::cout << "\nedge_loads kernels (snapshots/sec; speedups vs the "
               "pre-optimization path-major kernel):\n";
  lt.print(std::cout);
  std::cout << "\nbatched MLP forward (rows/sec; tiled vs KernelMode::"
               "kReference on the same weights and inputs):\n";
  mt.print(std::cout);

  jout.set("topologies", std::move(jtopos));
  jout.write_file("BENCH_fabric_scale.json", 2);
  std::cout << "\nmachine-readable results: BENCH_fabric_scale.json\n";

  // Acceptance bar: >= 3x on both hot paths at fat-tree k=16 (and any larger
  // fabric that ran).
  for (const Gate& g : gates) {
    if (g.topo == "fat-tree-k8") continue;  // warm-up scale, report only
    const bool edge_ok = g.edge_speedup >= 3.0;
    const bool mlp_ok = g.mlp_speedup >= 3.0;
    std::cout << "check: " << g.topo << " fused edge_loads >= 3x: "
              << (edge_ok ? "yes" : "NO") << " ("
              << util::fmt(g.edge_speedup, 2) << "x)\n";
    std::cout << "check: " << g.topo << " tiled MLP forward >= 3x: "
              << (mlp_ok ? "yes" : "NO") << " (" << util::fmt(g.mlp_speedup, 2)
              << "x)\n";
    if (!edge_ok || !mlp_ok) rc = 1;
  }

  // CI regression smoke: speedup *ratios* are machine-independent, so the
  // gate compares against the committed reference and fails when a ratio
  // collapses below 40% of the reference value.
  if (const char* ref_path = std::getenv("FIGRET_BENCH_REFERENCE")) {
    std::ifstream in(ref_path);
    if (!in) {
      std::cout << "ERROR: cannot read bench reference " << ref_path << "\n";
      rc = 1;
    } else {
      std::stringstream buf;
      buf << in.rdbuf();
      const std::string ref = buf.str();
      for (const Gate& g : gates) {
        for (const auto& [key, cur] :
             {std::pair<const char*, double>{"edge_loads_speedup",
                                             g.edge_speedup},
              {"mlp_speedup", g.mlp_speedup}}) {
          const double want = reference_value(ref, g.topo, key);
          if (want < 0.0) {
            std::cout << "reference check " << g.topo << " " << key
                      << ": not in reference — skipped\n";
            continue;
          }
          if (cur < 0.4 * want) {
            std::cout << "ERROR: " << g.topo << " " << key << " regressed: "
                      << util::fmt(cur, 2) << "x vs reference "
                      << util::fmt(want, 2) << "x\n";
            rc = 1;
          } else {
            std::cout << "reference check " << g.topo << " " << key << ": "
                      << util::fmt(cur, 2) << "x vs reference "
                      << util::fmt(want, 2) << "x — ok\n";
          }
        }
      }
    }
  }
  if (g_sink == 12345.6789) std::cout << "";  // keep the sink observable
  return rc;
}
