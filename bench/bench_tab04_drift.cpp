// Table 4: robustness to natural traffic drift. Train FIGRET on the 0-25%,
// 25-50% and 50-75% segments separately, always test on the last 25%, and
// report the decline relative to training on the full first 75%.
//
// Paper claim: performance is largely unaffected even long after training
// (FIGRET does not need frequent retraining); drift hurts slightly more at
// ToR level than at PoD level.
#include <iostream>

#include "bench_common.h"
#include "te/figret.h"
#include "te/harness.h"
#include "util/table.h"

namespace {

using namespace figret;

struct Metrics {
  double average;
  double p90;
};

Metrics train_and_eval(const bench::Scenario& sc,
                       const traffic::TrafficTrace& train_segment) {
  const bench::TrainProfile prof = bench::train_profile();
  te::FigretOptions fopt;
  fopt.history = prof.history;
  fopt.hidden = prof.hidden;
  fopt.epochs = prof.epochs;
  fopt.robust_weight = prof.robust_weight;
  te::FigretScheme figret(sc.ps, fopt);
  figret.fit(train_segment);

  te::Harness::Options hopt;
  hopt.eval_stride = sc.eval_stride;
  hopt.max_window = 12;
  te::Harness harness(sc.ps, sc.trace, hopt);
  const te::SchemeEval ev = harness.evaluate(figret, /*fit=*/false);
  return {ev.average(), ev.stats().p90};
}

void run(const std::string& name) {
  const bench::Scenario sc = bench::make_scenario(name);
  const std::size_t q = sc.trace.size() / 4;

  const Metrics base = train_and_eval(sc, sc.trace.slice(0, 3 * q));
  util::Table t({"training segment", "avg decline %", "90th pct decline %"});
  const struct {
    const char* label;
    std::size_t begin, end;
  } segments[] = {{"0%-25%", 0, q}, {"25%-50%", q, 2 * q},
                  {"50%-75%", 2 * q, 3 * q}};
  for (const auto& seg : segments) {
    const Metrics m = train_and_eval(sc, sc.trace.slice(seg.begin, seg.end));
    t.add_row({seg.label,
               util::fmt(100.0 * (m.average - base.average) / base.average, 1),
               util::fmt(100.0 * (m.p90 - base.p90) / base.p90, 1)});
  }
  std::cout << "\n--- " << sc.name << " (baseline: train on 0%-75%, avg "
            << util::fmt(base.average, 4) << ") ---\n";
  t.print(std::cout);
  bench::json_add_table(sc.name, t);
}

}  // namespace

int main() {
  bench::print_header(
      std::cout, "Table 4 — decline under natural traffic drift",
      "training on older / smaller segments costs only a few percent; "
      "drift effect slightly larger at ToR level",
      "negative values mean no degradation (as in the paper)");
  for (const char* name : {"PoD-DB", "pFabric", "ToR-DB"}) run(name);
  bench::write_json("tab04_drift");
  return 0;
}
