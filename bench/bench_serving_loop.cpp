// Serving-loop benchmark: sweep worker counts x arrival rates on the
// ToR-WEB fabric and report per-stage latency percentiles (p50/p99/p999),
// sustained throughput, SLO violations, and steady-state heap allocations.
//
// The zero-allocation claim is measured, not assumed: this TU replaces the
// global operator new/delete with counting wrappers, warms the pipeline up
// (buffers grow to steady-state capacity on the first pass), then counts
// every allocation on the measured passes. With the oracle off the count
// must be zero — any regression in the `_into` buffer-reuse paths shows up
// here as a nonzero column.
//
// Emits BENCH_serving_loop.json next to the binary (machine-readable run
// record; bench/results/ holds a committed reference artifact).
#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdlib>
#include <iostream>
#include <memory>
#include <new>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.h"
#include "te/figret.h"
#include "te/serving_loop.h"
#include "traffic/feed.h"
#include "util/json.h"
#include "util/parallel.h"
#include "util/table.h"

// --- global allocation counting ---------------------------------------------
// Counts every heap allocation while g_track_allocs is set. Both flags are
// plain relaxed atomics: the measured window starts and ends with the
// pipeline quiescent, so no tracked allocation can straddle the boundary.
namespace {
std::atomic<std::uint64_t> g_alloc_count{0};
std::atomic<bool> g_track_allocs{false};

void* counted_alloc(std::size_t n) {
  if (g_track_allocs.load(std::memory_order_relaxed))
    g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(n == 0 ? 1 : n)) return p;
  throw std::bad_alloc();
}
}  // namespace

void* operator new(std::size_t n) { return counted_alloc(n); }
void* operator new[](std::size_t n) { return counted_alloc(n); }
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace {

using namespace figret;
using Clock = std::chrono::steady_clock;

struct RunResult {
  std::size_t workers = 0;
  double rate = 0.0;  // offered snapshots/s; 0 = as fast as accepted
  std::uint64_t served = 0;
  double wall_seconds = 0.0;
  double throughput = 0.0;
  double serve_p50 = 0.0, serve_p99 = 0.0, serve_p999 = 0.0;
  double e2e_p99 = 0.0, queue_p99 = 0.0, infer_p99 = 0.0;
  std::uint64_t slo_violations = 0;
  std::uint64_t steady_allocs = 0;
};

double seconds_since(Clock::time_point t0) {
  return std::chrono::duration<double>(Clock::now() - t0).count();
}

/// One worker-count x rate configuration: fresh loop, one warmup pass over
/// the test range (buffers reach capacity), then `passes` measured replays.
RunResult run_config(const bench::Scenario& sc,
                     std::vector<std::unique_ptr<te::FigretScheme>>& schemes,
                     std::size_t workers, double rate, std::size_t passes,
                     double slo_seconds) {
  te::ServingLoop::Options opt;
  opt.workers = workers;
  opt.queue_capacity = 512;
  opt.slo_seconds = slo_seconds;
  opt.oracle = false;  // the strictly allocation-free serving path
  te::ServingLoop loop(sc.ps, sc.trace, opt);

  std::vector<te::TeScheme*> advisors;
  for (std::size_t i = 0; i < workers; ++i) advisors.push_back(schemes[i].get());
  loop.start(advisors);

  const auto window =
      static_cast<std::uint32_t>(schemes.front()->history_window());
  const auto begin = std::max<std::uint32_t>(
      window, static_cast<std::uint32_t>(sc.trace.size() * 3 / 4));
  const auto end = static_cast<std::uint32_t>(sc.trace.size());

  std::vector<te::SnapshotResult> results;
  results.reserve(static_cast<std::size_t>(end - begin) * (passes + 2));

  const auto drain_all = [&] {
    while (loop.completed() < loop.submitted()) {
      loop.drain(results);
      std::this_thread::yield();
    }
    loop.drain(results);
  };
  const auto replay = [&] {
    if (rate <= 0.0) {
      // Max-speed replay: plain submit/drain, no feed machinery — this is
      // the allocation-audited path.
      for (std::uint32_t t = begin; t < end; ++t) {
        loop.submit(t);
        loop.drain(results);
      }
    } else {
      traffic::SnapshotFeed::Options fo;
      fo.begin = begin;
      fo.end = end;
      fo.rate = rate;
      fo.drop_on_backpressure = false;
      traffic::SnapshotFeed feed(fo);
      feed.run([&](std::uint32_t idx) {
        loop.drain(results);
        return loop.try_submit(idx);
      });
    }
    drain_all();
  };

  replay();  // warmup: buffers grow to steady-state capacity here
  loop.stats().reset();
  results.clear();

  g_alloc_count.store(0, std::memory_order_relaxed);
  g_track_allocs.store(true, std::memory_order_relaxed);
  const auto t0 = Clock::now();
  for (std::size_t p = 0; p < passes; ++p) replay();
  const double wall = seconds_since(t0);
  g_track_allocs.store(false, std::memory_order_relaxed);

  loop.finish();

  const auto s = loop.stats().snapshot();
  RunResult r;
  r.workers = workers;
  r.rate = rate;
  r.served = s.served;
  r.wall_seconds = wall;
  r.throughput = wall > 0.0 ? static_cast<double>(s.served) / wall : 0.0;
  r.serve_p50 = s.serve_p50;
  r.serve_p99 = s.serve_p99;
  r.serve_p999 = s.serve_p999;
  r.e2e_p99 = s.e2e_p99;
  r.queue_p99 = s.queue_p99;
  r.infer_p99 = s.infer_p99;
  r.slo_violations = s.slo_violations;
  r.steady_allocs = g_alloc_count.load(std::memory_order_relaxed);
  return r;
}

std::string fmt_ms(double seconds) { return util::fmt(seconds * 1e3, 3); }

}  // namespace

int main() {
  bench::print_header(
      std::cout, "Serving loop — streaming latency and throughput",
      "run-to-completion workers over lock-free rings serve ToR-scale "
      "snapshots with zero steady-state allocations (oracle off)",
      "scaled ToR-WEB fabric; FIGRET advisor cloned per worker");

  bench::Scenario sc = bench::make_scenario("ToR-WEB");
  const bool full = bench::full_mode();
  const std::size_t passes = full ? 6 : 2;
  const double slo_seconds = 0.050;

  // Worker counts to sweep: powers of two up to the machine width.
  std::vector<std::size_t> worker_counts{1, 2, 4};
  const std::size_t hw = util::default_threads();
  if (hw > 4) worker_counts.push_back(hw);
  const std::size_t max_workers = worker_counts.back();

  // Train FIGRET once, ship the checkpoint to every worker instance.
  const bench::TrainProfile prof = bench::train_profile();
  te::FigretOptions fopt;
  fopt.history = prof.history;
  fopt.hidden = prof.hidden;
  fopt.epochs = prof.epochs;
  fopt.robust_weight = prof.robust_weight;
  auto trained = std::make_unique<te::FigretScheme>(sc.ps, fopt);
  const auto t0 = Clock::now();
  trained->fit(sc.trace.slice(0, sc.trace.size() * 3 / 4));
  const double train_seconds = seconds_since(t0);
  std::stringstream checkpoint;
  trained->save(checkpoint);
  std::vector<std::unique_ptr<te::FigretScheme>> schemes;
  schemes.push_back(std::move(trained));
  for (std::size_t i = 1; i < max_workers; ++i) {
    auto clone = std::make_unique<te::FigretScheme>(sc.ps, fopt);
    std::stringstream is(checkpoint.str());
    clone->load(is);
    schemes.push_back(std::move(clone));
  }
  std::cout << "FIGRET trained in " << util::fmt(train_seconds, 2)
            << "s; serving " << sc.trace.size() - sc.trace.size() * 3 / 4
            << "-snapshot test range, " << passes << " measured passes\n\n";

  // Arrival rates: max speed, then paced near/below a single worker's
  // capacity so queueing delay becomes visible in the latency columns.
  const std::vector<double> rates = full ? std::vector<double>{0.0, 2000.0,
                                                               500.0, 100.0}
                                         : std::vector<double>{0.0, 500.0,
                                                               100.0};

  std::vector<RunResult> runs;
  for (std::size_t w : worker_counts)
    for (double rate : rates)
      runs.push_back(
          run_config(sc, schemes, w, rate, passes, slo_seconds));

  util::Table t({"workers", "rate (snap/s)", "served", "throughput (snap/s)",
                 "serve p50 (ms)", "serve p99 (ms)", "serve p999 (ms)",
                 "queue p99 (ms)", "SLO viol (50ms)", "steady allocs"});
  for (const RunResult& r : runs)
    t.add_row({std::to_string(r.workers),
               r.rate <= 0.0 ? "max" : util::fmt(r.rate, 0),
               std::to_string(r.served), util::fmt(r.throughput, 1),
               fmt_ms(r.serve_p50), fmt_ms(r.serve_p99),
               fmt_ms(r.serve_p999), fmt_ms(r.queue_p99),
               std::to_string(r.slo_violations),
               std::to_string(r.steady_allocs)});
  t.print(std::cout);

  bool zero_alloc = true;
  for (const RunResult& r : runs)
    if (r.rate <= 0.0 && r.steady_allocs != 0) zero_alloc = false;
  std::cout << "\nsteady-state allocation audit (max-rate runs, oracle off): "
            << (zero_alloc ? "PASS (0 allocations)" : "FAIL") << "\n";

  util::Json j = util::Json::object();
  j.set("bench", "serving_loop")
      .set("scenario", sc.name)
      .set("note", sc.note)
      .set("nodes", static_cast<std::int64_t>(sc.ps.num_nodes()))
      .set("paths", static_cast<std::int64_t>(sc.ps.num_paths()))
      .set("trace_snapshots", static_cast<std::int64_t>(sc.trace.size()))
      .set("full_mode", full)
      .set("passes", static_cast<std::int64_t>(passes))
      .set("slo_seconds", slo_seconds)
      .set("figret_train_seconds", train_seconds)
      .set("zero_alloc_steady_state", zero_alloc);
  util::Json arr = util::Json::array();
  for (const RunResult& r : runs) {
    util::Json o = util::Json::object();
    o.set("workers", static_cast<std::int64_t>(r.workers))
        .set("rate_snapshots_per_s", r.rate)
        .set("served", static_cast<std::int64_t>(r.served))
        .set("wall_seconds", r.wall_seconds)
        .set("throughput_snapshots_per_s", r.throughput)
        .set("serve_p50_s", r.serve_p50)
        .set("serve_p99_s", r.serve_p99)
        .set("serve_p999_s", r.serve_p999)
        .set("e2e_p99_s", r.e2e_p99)
        .set("queue_p99_s", r.queue_p99)
        .set("infer_p99_s", r.infer_p99)
        .set("slo_violations", static_cast<std::int64_t>(r.slo_violations))
        .set("steady_state_allocations",
             static_cast<std::int64_t>(r.steady_allocs));
    arr.push(std::move(o));
  }
  j.set("runs", std::move(arr));
  j.write_file("BENCH_serving_loop.json", 2);
  std::cout << "machine-readable results: BENCH_serving_loop.json\n";
  return zero_alloc ? 0 : 1;
}
