// Figure 8: interpreting FIGRET — the relationship between a pair's traffic
// variance (x) and the average max path sensitivity of the paths serving it
// (y), for Hedge-based TE vs FIGRET on the Meta DB cluster (PoD and ToR).
//
// Paper claims:
//  * Hedging caps every pair's sensitivity at one constant, regardless of
//    traffic character;
//  * FIGRET assigns high-variance (bursty) pairs LOW max sensitivity (high
//    robustness) while letting stable pairs concentrate on their best path.
#include <algorithm>
#include <iostream>
#include <numeric>

#include "bench_common.h"
#include "te/figret.h"
#include "te/harness.h"
#include "te/lp_schemes.h"
#include "te/mlu.h"
#include "traffic/stats.h"
#include "util/stats.h"
#include "util/table.h"

namespace {

using namespace figret;

/// Mean S^max per pair over the evaluated snapshots.
std::vector<double> mean_sensitivities(const bench::Scenario& sc,
                                       te::Harness& harness,
                                       te::TeScheme& scheme) {
  const std::size_t window = std::max<std::size_t>(1, scheme.history_window());
  std::vector<double> acc(sc.ps.num_pairs(), 0.0);
  std::size_t count = 0;
  for (const std::size_t t : harness.eval_indices()) {
    const std::span<const traffic::DemandMatrix> history{
        sc.trace.snapshots.data() + (t - window), window};
    const te::TeConfig cfg = scheme.advise(history);
    const auto smax = te::max_pair_sensitivities(sc.ps, cfg);
    for (std::size_t p = 0; p < acc.size(); ++p) acc[p] += smax[p];
    ++count;
  }
  for (double& v : acc) v /= static_cast<double>(count);
  return acc;
}

void print_binned(const std::string& label, const std::vector<double>& var,
                  const std::vector<double>& sens) {
  // Bin pairs by variance rank into quintiles and report mean sensitivity.
  std::vector<std::size_t> order(var.size());
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::sort(order.begin(), order.end(),
            [&](std::size_t a, std::size_t b) { return var[a] < var[b]; });
  util::Table t({"variance quintile", "mean S^max", "max S^max"});
  const std::size_t per = std::max<std::size_t>(1, order.size() / 5);
  for (std::size_t q = 0; q < 5; ++q) {
    const std::size_t begin = q * per;
    const std::size_t end = q == 4 ? order.size() : (q + 1) * per;
    if (begin >= order.size()) break;
    double mean = 0.0, mx = 0.0;
    for (std::size_t i = begin; i < end; ++i) {
      mean += sens[order[i]];
      mx = std::max(mx, sens[order[i]]);
    }
    mean /= static_cast<double>(end - begin);
    t.add_row({"Q" + std::to_string(q + 1) + (q == 0 ? " (stable)" : q == 4 ? " (bursty)" : ""),
               util::fmt(mean, 4), util::fmt(mx, 4)});
  }
  std::cout << label << ":\n";
  t.print(std::cout);
  bench::json_add_table(label, t);
  std::cout << "Spearman(variance, S^max) = "
            << util::fmt(util::spearman(var, sens), 4) << "\n\n";
}

void run_scenario(const std::string& name) {
  const bench::Scenario sc = bench::make_scenario(name);
  te::Harness::Options hopt;
  hopt.eval_stride = sc.eval_stride * 2;
  hopt.max_window = 12;
  te::Harness harness(sc.ps, sc.trace, hopt);
  const auto var = traffic::normalized_pair_variances(harness.train_trace());

  std::cout << "\n--- " << sc.name << " (" << sc.note << ") ---\n";

  te::DesensitizationTe::Options dopt;
  dopt.sensitivity_bound = 0.5;
  dopt.peak_window = 8;
  te::DesensitizationTe hedge(sc.ps, dopt);
  hedge.fit(harness.train_trace());
  const auto hedge_sens = mean_sensitivities(sc, harness, hedge);
  print_binned(sc.name + ": Hedge-based TE (uniform cap 0.5)", var,
               hedge_sens);
  const double hedge_max =
      *std::max_element(hedge_sens.begin(), hedge_sens.end());
  std::cout << "check: hedge sensitivities capped at 0.5: "
            << (hedge_max <= 0.5 + 1e-6 ? "yes" : "NO") << "\n\n";
  bench::json_add_check(sc.name + ": hedge sensitivities capped at 0.5",
                        hedge_max <= 0.5 + 1e-6);

  const bench::TrainProfile prof = bench::train_profile();
  te::FigretOptions fopt;
  fopt.history = prof.history;
  fopt.hidden = prof.hidden;
  fopt.epochs = prof.epochs;
  fopt.robust_weight = prof.robust_weight;
  te::FigretScheme figret(sc.ps, fopt);
  figret.fit(harness.train_trace());
  const auto fig_sens = mean_sensitivities(sc, harness, figret);
  print_binned(sc.name + ": FIGRET", var, fig_sens);
  std::cout << "check: FIGRET sensitivity anti-correlates with variance "
               "(bursty pairs pushed to low sensitivity): "
            << (util::spearman(var, fig_sens) < 0.0 ? "yes" : "NO") << '\n';
  bench::json_add_check(
      sc.name + ": FIGRET sensitivity anti-correlates with variance",
      util::spearman(var, fig_sens) < 0.0);
}

}  // namespace

int main() {
  bench::print_header(
      std::cout, "Figure 8 — path sensitivity vs traffic variance",
      "Hedging caps every pair uniformly; FIGRET trades sensitivity in a "
      "fine-grained way (low for bursty pairs, free for stable ones)",
      "");
  for (const char* name : {"PoD-DB", "ToR-DB"}) run_scenario(name);
  bench::write_json("fig08_sensitivity");
  return 0;
}
