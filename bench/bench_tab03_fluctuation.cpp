// Table 3: FIGRET's performance decline when Gaussian fluctuations of
// amplitude alpha * N(0, sigma_sd^2) are injected into the test demands
// (sigma_sd = per-pair stddev measured on the real trace).
//
// Paper claim: graceful degradation — small alpha barely hurts; even
// alpha = 2 (doubled natural noise) degrades the average by < ~20%.
#include <iostream>

#include "bench_common.h"
#include "te/figret.h"
#include "te/harness.h"
#include "traffic/generators.h"
#include "util/table.h"

namespace {

using namespace figret;

struct Metrics {
  double average;
  double p90;
};

Metrics eval_on(const bench::Scenario& sc, te::FigretScheme& scheme,
                const traffic::TrafficTrace& full_trace) {
  te::Harness::Options hopt;
  hopt.eval_stride = sc.eval_stride;
  hopt.max_window = 12;
  te::Harness harness(sc.ps, full_trace, hopt);
  const te::SchemeEval ev = harness.evaluate(scheme, /*fit=*/false);
  return {ev.average(), ev.stats().p90};
}

void run(const std::string& name) {
  const bench::Scenario sc = bench::make_scenario(name);
  const bench::TrainProfile prof = bench::train_profile();
  te::FigretOptions fopt;
  fopt.history = prof.history;
  fopt.hidden = prof.hidden;
  fopt.epochs = prof.epochs;
  fopt.robust_weight = prof.robust_weight;
  te::FigretScheme figret(sc.ps, fopt);

  const std::size_t cut = sc.trace.size() * 3 / 4;
  const traffic::TrafficTrace train = sc.trace.slice(0, cut);
  figret.fit(train);
  const Metrics base = eval_on(sc, figret, sc.trace);

  util::Table t({"alpha", "avg decline %", "90th pct decline %"});
  for (const double alpha : {0.2, 0.5, 1.0, 2.0}) {
    // Perturb only the test portion; sigma measured on the training trace.
    traffic::TrafficTrace perturbed = sc.trace;
    const traffic::TrafficTrace noisy_test = traffic::perturb_gaussian(
        sc.trace.slice(cut, sc.trace.size()), train, alpha, 900 + alpha * 10);
    for (std::size_t i = 0; i < noisy_test.size(); ++i)
      perturbed.snapshots[cut + i] = noisy_test[i];

    const Metrics m = eval_on(sc, figret, perturbed);
    t.add_row({util::fmt(alpha, 1),
               util::fmt(100.0 * (m.average - base.average) / base.average, 1),
               util::fmt(100.0 * (m.p90 - base.p90) / base.p90, 1)});
  }
  std::cout << "\n--- " << sc.name << " (baseline avg "
            << util::fmt(base.average, 4) << ", p90 "
            << util::fmt(base.p90, 4) << ") ---\n";
  t.print(std::cout);
  bench::json_add_table(sc.name, t);
}

}  // namespace

int main() {
  bench::print_header(
      std::cout, "Table 3 — decline under increased traffic fluctuation",
      "no significant decline for small alpha; < ~20% average decline even "
      "at alpha = 2",
      "negative values mean no degradation (as in the paper)");
  for (const char* name : {"PoD-DB", "pFabric", "ToR-DB"}) run(name);
  bench::write_json("tab03_fluctuation");
  return 0;
}
