#include "bench_common.h"

#include <cstdlib>
#include <iostream>
#include <ostream>
#include <stdexcept>

#include "net/topology.h"
#include "net/yen.h"
#include "traffic/generators.h"
#include "util/json.h"
#include "util/table.h"

namespace figret::bench {
namespace {

Scenario build(std::string name, std::string note, net::Graph graph,
               traffic::TrafficTrace trace, std::size_t stride) {
  Scenario s;
  s.name = std::move(name);
  s.note = std::move(note);
  s.graph = std::move(graph);
  s.ps = te::PathSet::build(s.graph, net::all_pairs_k_shortest(s.graph, 3));
  s.trace = std::move(trace);
  s.eval_stride = stride;
  return s;
}

}  // namespace

bool full_mode() {
  const char* v = std::getenv("FIGRET_BENCH_FULL");
  return v != nullptr && v[0] == '1';
}

TrainProfile train_profile() {
  if (full_mode()) {
    // The paper's Appendix D.4 architecture.
    return {12, {128, 128, 128, 128, 128}, 30, 1.0};
  }
  // robust_weight calibrated on the scaled fabrics (bench_ablation_weight):
  // w = 1 reproduces the paper's magnitudes — a few percent better average
  // than DOTE on bursty ToR traces with ~half the severe-congestion events,
  // while leaving the stable gravity WANs at DOTE's level. Larger w buys
  // more tail at growing average cost (the knob a deployment would tune).
  return {8, {128, 128, 128}, 20, 1.0};
}

Scenario make_scenario(const std::string& name) {
  const bool full = full_mode();
  const std::size_t wan_len = full ? 672 : 280;
  const std::size_t dc_len = full ? 600 : 260;

  if (name == "GEANT") {
    return build(name, "real 2006 GEANT adjacency; synthetic WAN trace",
                 net::geant(), traffic::wan_trace(23, wan_len, 101),
                 full ? 4 : 6);
  }
  if (name == "UsCarrier") {
    // Paper: 158 nodes / 378 arcs. Scaled for the dense-simplex baselines.
    const std::size_t n = full ? 64 : 40;
    const std::size_t links = full ? 80 : 50;
    return build(name,
                 "scaled sparse WAN (paper: 158 nodes); gravity traffic",
                 net::sparse_wan(n, links, 11),
                 traffic::gravity_trace(n, wan_len, 103), full ? 6 : 8);
  }
  if (name == "Cogentco") {
    const std::size_t n = full ? 80 : 48;
    const std::size_t links = full ? 100 : 60;
    return build(name,
                 "scaled sparse WAN (paper: 197 nodes); gravity traffic",
                 net::sparse_wan(n, links, 13),
                 traffic::gravity_trace(n, wan_len, 107), full ? 8 : 10);
  }
  if (name == "pFabric") {
    return build(name, "9-ToR full mesh; Poisson web-search flows",
                 net::full_mesh(9), traffic::pfabric_trace(9, dc_len, 109),
                 2);
  }
  if (name == "PoD-DB") {
    return build(name, "4-PoD full mesh; aggregated ToR trace",
                 net::full_mesh(4), traffic::dc_pod_trace(4, 4, dc_len, 113),
                 1);
  }
  if (name == "PoD-WEB") {
    return build(name, "8-PoD full mesh; aggregated ToR trace",
                 net::full_mesh(8), traffic::dc_pod_trace(8, 4, dc_len, 127),
                 2);
  }
  if (name == "ToR-DB") {
    const std::size_t n = full ? 48 : 24;
    const std::size_t d = full ? 12 : 8;
    return build(name,
                 "scaled random-regular ToR fabric (paper: 155 nodes)",
                 net::random_regular(n, d, 131),
                 traffic::dc_tor_trace(n, dc_len, 137), full ? 4 : 4);
  }
  if (name == "ToR-WEB") {
    const std::size_t n = full ? 64 : 32;
    const std::size_t d = full ? 14 : 10;
    return build(name,
                 "scaled random-regular ToR fabric (paper: 324 nodes)",
                 net::random_regular(n, d, 139),
                 traffic::dc_tor_trace(n, dc_len, 149), full ? 6 : 6);
  }
  throw std::invalid_argument("make_scenario: unknown scenario " + name);
}

std::vector<std::string> scenario_names() {
  return {"GEANT",  "UsCarrier", "Cogentco", "pFabric",
          "PoD-DB", "PoD-WEB",   "ToR-DB",   "ToR-WEB"};
}

void print_header(std::ostream& os, const std::string& figure,
                  const std::string& claim, const std::string& note) {
  os << "==============================================================\n"
     << figure << "\n"
     << "Paper claim: " << claim << "\n";
  if (!note.empty()) os << "Scale note:  " << note << "\n";
  os << "==============================================================\n";
}

std::vector<std::string> eval_header() {
  return {"scheme", "avg",  "p50",    "p75",   "p90",
          "p99",    "max",  ">2x(sev)", "advise_ms"};
}

std::vector<std::string> eval_row(const te::SchemeEval& ev) {
  const util::BoxStats s = ev.stats();
  return {ev.name,
          util::fmt(ev.average(), 4),
          util::fmt(s.median, 4),
          util::fmt(s.p75, 4),
          util::fmt(s.p90, 4),
          util::fmt(s.p99, 4),
          util::fmt(s.max, 4),
          std::to_string(ev.severe_congestion),
          util::fmt(ev.mean_advise_seconds * 1e3, 3)};
}

namespace {

// Accumulators for the BENCH_*.json mirror. Bench binaries are
// single-threaded mains, so process-global state keeps the per-bench diff to
// one call per printed table instead of threading a sink through every
// helper signature.
util::Json& sink_tables() {
  static util::Json j = util::Json::array();
  return j;
}

util::Json& sink_checks() {
  static util::Json j = util::Json::array();
  return j;
}

}  // namespace

void json_add_table(const std::string& section, const util::Table& table) {
  util::Json tab = util::Json::object();
  tab.set("section", section);
  util::Json rows = util::Json::array();
  const auto& header = table.header();
  for (const auto& row : table.row_data()) {
    util::Json obj = util::Json::object();
    for (std::size_t c = 0; c < header.size() && c < row.size(); ++c) {
      const std::string& cell = row[c];
      char* end = nullptr;
      const double v = std::strtod(cell.c_str(), &end);
      if (!cell.empty() && end != nullptr && *end == '\0')
        obj.set(header[c], v);
      else
        obj.set(header[c], cell);
    }
    rows.push(std::move(obj));
  }
  tab.set("rows", std::move(rows));
  sink_tables().push(std::move(tab));
}

void json_add_check(const std::string& name, bool pass) {
  sink_checks().push(
      util::Json::object().set("check", name).set("pass", pass));
}

void write_json(const std::string& bench_id) {
  util::Json j = util::Json::object();
  j.set("bench", bench_id).set("full_mode", full_mode());
  j.set("tables", std::move(sink_tables()));
  if (sink_checks().size() > 0) j.set("checks", std::move(sink_checks()));
  sink_tables() = util::Json::array();
  sink_checks() = util::Json::array();
  const std::string path = "BENCH_" + bench_id + ".json";
  j.write_file(path);
  std::cout << "machine-readable results: " << path << "\n";
}

}  // namespace figret::bench
