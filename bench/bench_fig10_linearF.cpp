// Figure 10 / Table 7 (Appendix C): heuristic fine-grained Des TE with a
// *linear* sensitivity-bound function over the variance ranking, evaluated
// on the PoD-level Meta DB scenario for the paper's five parameter sets.
//
// Paper claims: stricter Min improves burst handling (groups {1,2,3});
// relaxing Max improves average performance (groups {3,4}); combining both
// (set 5) reduces normal-case MLU while keeping robustness.
#include <iostream>

#include "bench_common.h"
#include "te/harness.h"
#include "te/heuristic_f.h"
#include "te/lp_schemes.h"
#include "util/table.h"

namespace {

using namespace figret;

struct ParamSet {
  const char* label;
  double min_bound;
  double max_bound;
};

}  // namespace

int main() {
  bench::print_header(
      std::cout,
      "Figure 10 / Table 7 — linear F parameter study (PoD-level DB)",
      "strict Min handles bursts; relaxed Max improves the average; set 5 "
      "gets both",
      "capacities normalized to min 1, as in Appendix C");

  const bench::Scenario sc = bench::make_scenario("PoD-DB");
  te::Harness::Options hopt;
  hopt.eval_stride = sc.eval_stride;
  hopt.max_window = 12;
  te::Harness harness(sc.ps, sc.trace, hopt);

  // Table 7's five parameter numbers.
  const ParamSet sets[] = {
      {"1 (strategy 1: strict)", 1.0 / 3.0, 1.0 / 2.0},
      {"2 (strategy 1)", 1.0 / 3.0, 2.0 / 3.0},
      {"3 (original)", 2.0 / 3.0, 2.0 / 3.0},
      {"4 (strategy 2: relax Max)", 2.0 / 3.0, 5.0 / 6.0},
      {"5 (both)", 1.0 / 3.0, 5.0 / 6.0},
  };

  util::Table t(bench::eval_header());
  for (const ParamSet& p : sets) {
    te::HeuristicFOptions opt;
    opt.shape = te::FShape::kLinear;
    opt.min_bound = p.min_bound;
    opt.max_bound = p.max_bound;
    opt.peak_window = 8;
    te::HeuristicFTe scheme(sc.ps, opt, std::string("linearF ") + p.label);
    t.add_row(bench::eval_row(harness.evaluate(scheme)));
  }
  // Plain Des TE reference (uniform 2/3 bound).
  te::DesensitizationTe::Options dopt;
  dopt.sensitivity_bound = 2.0 / 3.0;
  dopt.peak_window = 8;
  te::DesensitizationTe des(sc.ps, dopt);
  t.add_row(bench::eval_row(harness.evaluate(des)));
  t.print(std::cout);
  bench::json_add_table(sc.name, t);
  bench::write_json("fig10_linearF");
  return 0;
}
