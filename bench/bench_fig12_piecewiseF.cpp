// Figure 12 / Table 8 (Appendix C): heuristic fine-grained Des TE with a
// *piecewise* sensitivity-bound function (stable pairs below the breakpoint
// get Max, bursty pairs above it get Min) on the PoD-level Meta DB scenario.
//
// Paper claims: larger breakpoint => better average ({1,2,3}, {5,6,7});
// smaller Min at fixed breakpoint => better burst handling ({1,4});
// larger Max at fixed Min => better average ({4,5}).
#include <iostream>

#include "bench_common.h"
#include "te/harness.h"
#include "te/heuristic_f.h"
#include "te/lp_schemes.h"
#include "util/table.h"

namespace {

using namespace figret;

struct ParamSet {
  const char* label;
  double min_bound;
  double max_bound;
  double breakpoint;
};

}  // namespace

int main() {
  bench::print_header(
      std::cout,
      "Figure 12 / Table 8 — piecewise F parameter study (PoD-level DB)",
      "breakpoint up => average down; Min down => bursts handled better; "
      "Max up => average better",
      "breakpoint = fraction of pairs (ascending variance) treated stable");

  const bench::Scenario sc = bench::make_scenario("PoD-DB");
  te::Harness::Options hopt;
  hopt.eval_stride = sc.eval_stride;
  hopt.max_window = 12;
  te::Harness harness(sc.ps, sc.trace, hopt);

  // Table 8's seven parameter numbers.
  const ParamSet sets[] = {
      {"1 (strict Min, bp .5)", 1.0 / 2.0, 2.0 / 3.0, 0.50},
      {"2 (strict Min, bp .65)", 1.0 / 2.0, 2.0 / 3.0, 0.65},
      {"3 (strict Min, bp .8)", 1.0 / 2.0, 2.0 / 3.0, 0.80},
      {"4 (original flat 2/3)", 2.0 / 3.0, 2.0 / 3.0, 0.50},
      {"5 (relaxed Max, bp .5)", 2.0 / 3.0, 5.0 / 6.0, 0.50},
      {"6 (relaxed Max, bp .65)", 2.0 / 3.0, 5.0 / 6.0, 0.65},
      {"7 (relaxed Max, bp .8)", 2.0 / 3.0, 5.0 / 6.0, 0.80},
  };

  util::Table t(bench::eval_header());
  for (const ParamSet& p : sets) {
    te::HeuristicFOptions opt;
    opt.shape = te::FShape::kPiecewise;
    opt.min_bound = p.min_bound;
    opt.max_bound = p.max_bound;
    opt.breakpoint = p.breakpoint;
    opt.peak_window = 8;
    te::HeuristicFTe scheme(sc.ps, opt, std::string("pwF ") + p.label);
    t.add_row(bench::eval_row(harness.evaluate(scheme)));
  }
  t.print(std::cout);
  bench::json_add_table(sc.name, t);
  bench::write_json("fig12_piecewiseF");
  return 0;
}
