// Figures 14 & 15 (Appendix E): the Fig 7 link-failure protocol repeated on
// pFabric and on the ToR-level Meta DB fabric.
//
// Paper claim: same ordering as Fig 7; on highly dynamic ToR traffic even
// the failure-aware Des TE is unsatisfactory, while FIGRET stays close to
// the failure-aware oracle.
#include <iostream>

#include "bench_common.h"
#include "te/figret.h"
#include "te/harness.h"
#include "te/lp_schemes.h"
#include "util/table.h"

namespace {

using namespace figret;

void run(const std::string& scenario_name) {
  const bench::Scenario sc = bench::make_scenario(scenario_name);
  te::Harness::Options hopt;
  hopt.eval_stride = sc.eval_stride * 2;
  hopt.max_window = 12;
  te::Harness harness(sc.ps, sc.trace, hopt);

  const bench::TrainProfile prof = bench::train_profile();
  te::FigretOptions fopt;
  fopt.history = prof.history;
  fopt.hidden = prof.hidden;
  fopt.epochs = prof.epochs;
  fopt.robust_weight = prof.robust_weight;

  te::FigretScheme figret(sc.ps, fopt);
  figret.fit(harness.train_trace());
  te::FigretScheme dote(sc.ps, te::dote_options(fopt), "DOTE");
  dote.fit(harness.train_trace());

  te::DesensitizationTe::Options dopt;
  dopt.sensitivity_bound = 0.5;
  dopt.peak_window = 8;

  for (std::size_t failures = 1; failures <= 3; ++failures) {
    const auto failed =
        te::sample_safe_failures(sc.ps, failures, 2000 + failures);
    const auto alive = te::surviving_paths(sc.ps, failed);

    util::Table t(bench::eval_header());
    t.add_row(bench::eval_row(
        harness.evaluate_under_failures(figret, failed, /*fit=*/false)));
    t.add_row(bench::eval_row(
        harness.evaluate_under_failures(dote, failed, /*fit=*/false)));
    te::DesensitizationTe des(sc.ps, dopt);
    t.add_row(bench::eval_row(harness.evaluate_under_failures(des, failed)));
    te::FaultAwareDesTe fa(sc.ps, alive, dopt);
    t.add_row(bench::eval_row(harness.evaluate_under_failures(fa, failed)));

    std::cout << "\n--- " << sc.name << ", " << failures
              << " random link failure(s) ---\n";
    t.print(std::cout);
    bench::json_add_table(sc.name + ", " + std::to_string(failures) +
                              " failure(s)",
                          t);
  }
}

}  // namespace

int main() {
  bench::print_header(
      std::cout, "Figures 14/15 — link failures on pFabric and ToR-level DB",
      "FIGRET resilient to failures on DC fabrics; Des TE unsatisfactory "
      "under highly dynamic ToR traffic even when failure-aware",
      "ToR fabric scaled down (DESIGN.md §2)");
  run("pFabric");
  run("ToR-DB");
  bench::write_json("fig14_15_failures_dc");
  return 0;
}
