// Ablation: the history window H. Appendix G.2 (Fig 18) argues that
// enlarging the window cannot make bursts predictable; this bench shows the
// downstream consequence — FIGRET's quality saturates quickly in H, so the
// paper's H = 12 is comfortably in the flat region.
#include <iostream>

#include "bench_common.h"
#include "te/figret.h"
#include "te/harness.h"
#include "util/table.h"

int main() {
  using namespace figret;
  bench::print_header(
      std::cout, "Ablation — FIGRET history window sweep (ToR-DB)",
      "quality saturates in H: bigger windows cannot anticipate bursts "
      "(complements Fig 18)",
      "scaled ToR fabric");

  const bench::Scenario sc = bench::make_scenario("ToR-DB");
  te::Harness::Options hopt;
  hopt.eval_stride = sc.eval_stride;
  hopt.max_window = 16;
  te::Harness harness(sc.ps, sc.trace, hopt);

  const bench::TrainProfile prof = bench::train_profile();
  util::Table t(bench::eval_header());
  for (const std::size_t h : {std::size_t{1}, std::size_t{4}, std::size_t{8},
                              std::size_t{12}, std::size_t{16}}) {
    te::FigretOptions fopt;
    fopt.history = h;
    fopt.hidden = prof.hidden;
    fopt.epochs = prof.epochs;
    fopt.robust_weight = prof.robust_weight;
    te::FigretScheme scheme(sc.ps, fopt, "FIGRET H=" + std::to_string(h));
    t.add_row(bench::eval_row(harness.evaluate(scheme)));
  }
  t.print(std::cout);
  bench::json_add_table(sc.name, t);
  bench::write_json("ablation_window");
  return 0;
}
