// Figure 7: coping with 1-3 random link failures on GEANT. Schemes compute
// configurations unaware of failures; traffic reroutes per §4.5; results are
// normalized by a failure-aware omniscient oracle. FA Des TE knows the
// failures in advance (upper baseline).
//
// Paper claim: FIGRET outperforms DOTE and Des TE and is competitive with
// the failure-aware Des TE.
#include <iostream>

#include "bench_common.h"
#include "te/figret.h"
#include "te/harness.h"
#include "te/lp_schemes.h"
#include "util/table.h"

namespace {

using namespace figret;

void run(const std::string& scenario_name) {
  const bench::Scenario sc = bench::make_scenario(scenario_name);
  te::Harness::Options hopt;
  hopt.eval_stride = sc.eval_stride * 2;  // failure sweep is 3x the work
  hopt.max_window = 12;
  te::Harness harness(sc.ps, sc.trace, hopt);

  const bench::TrainProfile prof = bench::train_profile();
  te::FigretOptions fopt;
  fopt.history = prof.history;
  fopt.hidden = prof.hidden;
  fopt.epochs = prof.epochs;
  fopt.robust_weight = prof.robust_weight;

  // Train the learned schemes once; failures vary per row.
  te::FigretScheme figret(sc.ps, fopt);
  figret.fit(harness.train_trace());
  te::FigretScheme dote(sc.ps, te::dote_options(fopt), "DOTE");
  dote.fit(harness.train_trace());

  te::DesensitizationTe::Options dopt;
  dopt.sensitivity_bound = sc.name == "GEANT" ? 2.0 / 3.0 : 0.5;
  dopt.peak_window = 8;

  for (std::size_t failures = 1; failures <= 3; ++failures) {
    const auto failed =
        te::sample_safe_failures(sc.ps, failures, 1000 + failures);
    const auto alive = te::surviving_paths(sc.ps, failed);

    util::Table t(bench::eval_header());
    t.add_row(bench::eval_row(
        harness.evaluate_under_failures(figret, failed, /*fit=*/false)));
    t.add_row(bench::eval_row(
        harness.evaluate_under_failures(dote, failed, /*fit=*/false)));
    te::DesensitizationTe des(sc.ps, dopt);
    t.add_row(bench::eval_row(harness.evaluate_under_failures(des, failed)));
    te::FaultAwareDesTe fa(sc.ps, alive, dopt);
    t.add_row(bench::eval_row(harness.evaluate_under_failures(fa, failed)));

    std::cout << "\n--- " << sc.name << ", " << failures
              << " random link failure(s) ---\n";
    t.print(std::cout);
    bench::json_add_table(sc.name + ", " + std::to_string(failures) +
                              " failure(s)",
                          t);
  }
}

}  // namespace

int main() {
  bench::print_header(
      std::cout, "Figure 7 — random link failures on GEANT",
      "FIGRET >= DOTE and Des TE under failures; competitive with "
      "failure-aware Des TE",
      "oracle = omniscient LP restricted to surviving paths");
  run("GEANT");
  bench::write_json("fig07_failures");
  return 0;
}
