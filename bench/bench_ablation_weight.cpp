// Ablation: the robust-weight knob w in FIGRET's loss (Eq. 6). This is the
// design choice the whole paper hinges on — w = 0 is DOTE, w -> infinity is
// uniform hedging. Sweeping w on the bursty ToR-DB scenario regenerates the
// trade-off curve used to calibrate the bench profile (EXPERIMENTS.md):
// average normalized MLU rises slowly with w while the tail (p99/max)
// falls sharply, with a wide sweet spot around w ~ 1-8.
#include <iostream>

#include "bench_common.h"
#include "te/figret.h"
#include "te/harness.h"
#include "util/table.h"

int main() {
  using namespace figret;
  bench::print_header(
      std::cout, "Ablation — FIGRET robust weight sweep (ToR-DB)",
      "w trades average (slowly up) for tail (sharply down); w=0 is DOTE",
      "scaled ToR fabric");

  const bench::Scenario sc = bench::make_scenario("ToR-DB");
  te::Harness::Options hopt;
  hopt.eval_stride = sc.eval_stride;
  hopt.max_window = 12;
  te::Harness harness(sc.ps, sc.trace, hopt);

  const bench::TrainProfile prof = bench::train_profile();
  util::Table t(bench::eval_header());
  for (const double w : {0.0, 0.5, 1.0, 2.0, 4.0, 8.0, 16.0, 64.0}) {
    te::FigretOptions fopt;
    fopt.history = prof.history;
    fopt.hidden = prof.hidden;
    fopt.epochs = prof.epochs;
    fopt.robust_weight = w;
    te::FigretScheme scheme(sc.ps, fopt,
                            w == 0.0 ? "DOTE (w=0)"
                                     : "FIGRET w=" + util::fmt(w, 1));
    t.add_row(bench::eval_row(harness.evaluate(scheme)));
  }
  t.print(std::cout);
  bench::json_add_table(sc.name, t);
  bench::write_json("ablation_weight");
  return 0;
}
