// Figure 4: cosine-similarity analysis — for each snapshot, the maximum
// cosine similarity against a window of 12 historical snapshots. The paper's
// candlestick ordering to reproduce: gravity-model WANs ~1 (most stable),
// real-like WAN close to 1 with outliers, PoD-level lower, ToR-level lowest.
#include <iostream>

#include "bench_common.h"
#include "traffic/stats.h"
#include "util/stats.h"
#include "util/table.h"

int main() {
  using namespace figret;
  bench::print_header(
      std::cout, "Figure 4 — windowed cosine similarity (H = 12)",
      "burstiness grows WAN(gravity) < WAN(real) < DC PoD < DC ToR",
      "synthetic traces statistically matched to the paper's datasets");

  util::Table t({"topology", "p25", "median", "p75", "min", "outliers<0.8"});
  struct Row {
    std::string name;
    double median;
  };
  std::vector<Row> medians;
  for (const std::string& name : bench::scenario_names()) {
    const bench::Scenario sc = bench::make_scenario(name);
    const auto cos = traffic::window_max_cosine(sc.trace, 12);
    const util::BoxStats s = util::box_stats(cos);
    std::size_t outliers = 0;
    for (double c : cos)
      if (c < 0.8) ++outliers;
    t.add_row({name, util::fmt(s.p25, 4), util::fmt(s.median, 4),
               util::fmt(s.p75, 4), util::fmt(s.min, 4),
               std::to_string(outliers)});
    medians.push_back({name, s.median});
  }
  t.print(std::cout);
  bench::json_add_table("window_max_cosine", t);

  auto median_of = [&](const std::string& n) {
    for (const Row& r : medians)
      if (r.name == n) return r.median;
    return 0.0;
  };
  std::cout << "check: gravity WAN >= real WAN: "
            << (median_of("UsCarrier") >= median_of("GEANT") - 1e-9 ? "yes"
                                                                    : "NO")
            << "\ncheck: WAN >= PoD-level:       "
            << (median_of("GEANT") >= median_of("PoD-DB") - 1e-9 ? "yes"
                                                                 : "NO")
            << "\ncheck: PoD >= ToR-level:       "
            << (median_of("PoD-DB") >= median_of("ToR-DB") - 1e-9 ? "yes"
                                                                  : "NO")
            << '\n';
  bench::json_add_check("gravity WAN >= real WAN",
                        median_of("UsCarrier") >= median_of("GEANT") - 1e-9);
  bench::json_add_check("WAN >= PoD-level",
                        median_of("GEANT") >= median_of("PoD-DB") - 1e-9);
  bench::json_add_check("PoD >= ToR-level",
                        median_of("PoD-DB") >= median_of("ToR-DB") - 1e-9);
  bench::write_json("fig04_cosine");
  return 0;
}
