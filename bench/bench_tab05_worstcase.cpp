// Table 5: worst-case stress test — the per-pair fluctuation magnitudes are
// rank-REVERSED (historically stable pairs get the largest noise), directly
// attacking FIGRET's learned fine-grained robustness.
//
// Paper claims:
//  * degradation exceeds the matched-rank case of Table 3 but performance
//    does not collapse (~30-40% at alpha = 2 on DB traces);
//  * the Spearman rank correlation of per-pair variances between train and
//    test splits is very high (0.92-0.98), so this adversarial reversal is
//    rare in practice;
//  * pFabric is barely affected (uniform random pairs => no variance
//    ranking to exploit).
#include <algorithm>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>

#include "bench_common.h"
#include "te/figret.h"
#include "te/harness.h"
#include "traffic/adversary.h"
#include "traffic/generators.h"
#include "traffic/scenarios.h"
#include "traffic/stats.h"
#include "util/stats.h"
#include "util/table.h"

namespace {

using namespace figret;

struct Metrics {
  double average;
  double p90;
};

Metrics eval_on(const bench::Scenario& sc, te::FigretScheme& scheme,
                const traffic::TrafficTrace& full_trace) {
  te::Harness::Options hopt;
  hopt.eval_stride = sc.eval_stride;
  hopt.max_window = 12;
  te::Harness harness(sc.ps, full_trace, hopt);
  const te::SchemeEval ev = harness.evaluate(scheme, /*fit=*/false);
  return {ev.average(), ev.stats().p90};
}

void run(const std::string& name) {
  const bench::Scenario sc = bench::make_scenario(name);
  const bench::TrainProfile prof = bench::train_profile();
  te::FigretOptions fopt;
  fopt.history = prof.history;
  fopt.hidden = prof.hidden;
  fopt.epochs = prof.epochs;
  fopt.robust_weight = prof.robust_weight;
  te::FigretScheme figret(sc.ps, fopt);

  const std::size_t cut = sc.trace.size() * 3 / 4;
  const traffic::TrafficTrace train = sc.trace.slice(0, cut);
  const traffic::TrafficTrace test = sc.trace.slice(cut, sc.trace.size());
  figret.fit(train);
  const Metrics base = eval_on(sc, figret, sc.trace);

  util::Table t({"alpha", "avg decline %", "90th pct decline %"});
  for (const double alpha : {0.2, 0.5, 1.0, 2.0}) {
    traffic::TrafficTrace perturbed = sc.trace;
    const traffic::TrafficTrace noisy_test =
        traffic::perturb_gaussian_rank_reversed(test, train, alpha,
                                                1300 + alpha * 10);
    for (std::size_t i = 0; i < noisy_test.size(); ++i)
      perturbed.snapshots[cut + i] = noisy_test[i];
    const Metrics m = eval_on(sc, figret, perturbed);
    t.add_row({util::fmt(alpha, 1),
               util::fmt(100.0 * (m.average - base.average) / base.average, 1),
               util::fmt(100.0 * (m.p90 - base.p90) / base.p90, 1)});
  }

  // How likely is this worst case in practice? Spearman correlation of the
  // per-pair variance rankings between train and test.
  const double rho = util::spearman(traffic::pair_variances(train),
                                    traffic::pair_variances(test));
  std::cout << "\n--- " << sc.name << " ---\n";
  t.print(std::cout);
  bench::json_add_table(sc.name, t);
  std::cout << "Spearman(variance ranks, train vs test) = "
            << util::fmt(rho, 3)
            << "  (paper: 0.92 PoD DB / 0.98 ToR DB — reversal is rare)\n";
}

// ------------------------------------------------------ scenario classes --
//
// Adversarial & jitter-heavy scenario suite on GEANT: FIGRET is trained on
// the standard WAN trace, then each CC-literature scenario class replaces
// the test suffix and is scored through the same harness. The
// regret-maximizing adversary is primed with the worst class window it has
// to beat, so its best regret is >= the worst class peak by construction —
// the bench asserts it ends *strictly* higher.

struct ClassResult {
  std::string name;
  te::SchemeEval eval;
  traffic::TrafficTrace spliced;  // train prefix + class test suffix
  std::vector<std::size_t> eval_indices;
};

/// String-scans a committed BENCH_tab05_worstcase.json for the row
/// `"class": "<cls>"` followed by `"<key>": <value>`.
double reference_value(const std::string& ref, const std::string& cls,
                       const std::string& key) {
  const std::size_t at = ref.find("\"class\": \"" + cls + "\"");
  if (at == std::string::npos) return -1.0;
  const std::string needle = "\"" + key + "\":";
  const std::size_t val_at = ref.find(needle, at);
  if (val_at == std::string::npos) return -1.0;
  return std::strtod(ref.c_str() + val_at + needle.size(), nullptr);
}

int run_scenario_classes() {
  const bench::Scenario sc = bench::make_scenario("GEANT");
  const bench::TrainProfile prof = bench::train_profile();
  const std::size_t n = sc.trace.num_nodes;
  const std::size_t cut = sc.trace.size() * 3 / 4;
  const std::size_t tail = sc.trace.size() - cut;

  te::FigretOptions fopt;
  fopt.history = prof.history;
  fopt.hidden = prof.hidden;
  fopt.epochs = prof.epochs;
  fopt.robust_weight = prof.robust_weight;
  te::FigretScheme figret(sc.ps, fopt);
  figret.fit(sc.trace.slice(0, cut));

  // One spliced trace per class: the trained model faces out-of-
  // distribution test traffic while the train prefix still primes windows.
  std::vector<ClassResult> classes;
  const auto add_class = [&](std::string name, traffic::TrafficTrace test) {
    traffic::TrafficTrace spliced = sc.trace;
    for (std::size_t i = 0; i < tail; ++i)
      spliced.snapshots[cut + i] = std::move(test.snapshots[i]);
    te::Harness::Options hopt;
    hopt.eval_stride = sc.eval_stride;
    hopt.max_window = 12;
    te::Harness harness(sc.ps, spliced, hopt);
    ClassResult cr;
    cr.name = std::move(name);
    cr.eval = harness.evaluate(figret, /*fit=*/false);
    cr.eval_indices = harness.eval_indices();
    cr.spliced = std::move(spliced);
    classes.push_back(std::move(cr));
  };
  add_class("wan (baseline)", sc.trace.slice(cut, sc.trace.size()));
  add_class("jitter_spike", traffic::jitter_spike_trace(n, tail, 501));
  add_class("onoff", traffic::onoff_trace(n, tail, 503));
  add_class("competitor", traffic::competitor_trace(n, tail, 509));
  add_class("mixed_interactive_bulk",
            traffic::mixed_interactive_bulk_trace(n, tail, 521));

  // Worst (class, snapshot): the adversary must beat this peak.
  double best_class_peak = 0.0;
  const ClassResult* worst_class = nullptr;
  std::size_t worst_pos = 0;
  for (const ClassResult& cr : classes) {
    const auto& nm = cr.eval.normalized;
    const std::size_t arg = static_cast<std::size_t>(
        std::max_element(nm.begin(), nm.end()) - nm.begin());
    if (nm[arg] > best_class_peak) {
      best_class_peak = nm[arg];
      worst_class = &cr;
      worst_pos = arg;
    }
  }

  util::Table t({"class", "avg norm MLU", "p90 norm MLU", "peak norm MLU"});
  for (const ClassResult& cr : classes)
    t.add_row({cr.name, util::fmt(cr.eval.average(), 3),
               util::fmt(cr.eval.stats().p90, 3),
               util::fmt(*std::max_element(cr.eval.normalized.begin(),
                                           cr.eval.normalized.end()), 3)});

  // Regret adversary, primed with the worst class window: the victim
  // commits the exact configuration that produced the class peak, and the
  // peak snapshot is an extra step-0 seed (projection is regret-neutral),
  // so best regret starts at the class peak and the search goes up.
  traffic::AdversaryOptions aopt;
  aopt.steps = 2;
  aopt.iterations = bench::full_mode() ? 64 : 32;
  aopt.oracle_seeds = 4;
  aopt.seed = 4242;
  traffic::RegretAdversary adversary(sc.ps, aopt);
  const std::size_t window =
      std::max<std::size_t>(1, figret.history_window());
  const std::size_t peak_idx = worst_class->eval_indices[worst_pos];
  const std::span<const traffic::DemandMatrix> history{
      worst_class->spliced.snapshots.data() + (peak_idx - window), window};
  const traffic::DemandMatrix peak_demand =
      worst_class->spliced.snapshots[peak_idx].sparsified();
  const traffic::AdversaryResult att =
      adversary.attack(figret, history, {&peak_demand, 1});
  t.add_row({"adversarial", util::fmt(util::mean(att.step_regret), 3),
             util::fmt(att.best_regret, 3), util::fmt(att.best_regret, 3)});

  std::cout << "\n--- scenario classes (GEANT) ---\n";
  t.print(std::cout);
  bench::json_add_table("scenario classes (GEANT)", t);
  std::cout << "worst non-adversarial class: " << worst_class->name
            << " (peak " << util::fmt(best_class_peak, 3) << "), adversary "
            << util::fmt(att.best_regret, 3) << " in " << att.lp_solves
            << " LP solves\n";

  int rc = 0;
  const bool beats = att.best_regret > best_class_peak;
  bench::json_add_check("adversary regret exceeds best scenario class",
                        beats);
  if (!beats) {
    std::cout << "ERROR: adversary (" << util::fmt(att.best_regret, 3)
              << ") did not beat the worst scenario class ("
              << util::fmt(best_class_peak, 3) << ")\n";
    rc = 1;
  }

  // CI regression smoke: regret is a normalized ratio, so the gate compares
  // against the committed reference and fails when the search collapses
  // below 70% of it (generous slack for cross-machine FP/ISA variation).
  if (const char* ref_path = std::getenv("FIGRET_BENCH_REFERENCE")) {
    std::ifstream in(ref_path);
    if (!in) {
      std::cout << "ERROR: cannot read bench reference " << ref_path << "\n";
      rc = 1;
    } else {
      std::stringstream buf;
      buf << in.rdbuf();
      const double want =
          reference_value(buf.str(), "adversarial", "peak norm MLU");
      if (want < 0.0) {
        std::cout << "reference check adversarial peak: not in reference — "
                     "skipped\n";
      } else if (att.best_regret < 0.7 * want) {
        std::cout << "ERROR: adversary regret regressed: "
                  << util::fmt(att.best_regret, 3) << " vs reference "
                  << util::fmt(want, 3) << "\n";
        rc = 1;
      } else {
        std::cout << "reference check adversarial peak: "
                  << util::fmt(att.best_regret, 3) << " vs reference "
                  << util::fmt(want, 3) << " — ok\n";
      }
    }
  }
  return rc;
}

}  // namespace

int main() {
  bench::print_header(
      std::cout, "Table 5 — decline under rank-reversed (worst-case) "
                 "fluctuations",
      "larger decline than Table 3, but no collapse; variance rankings are "
      "stable across time so the attack is unrealistic",
      "negative values mean no degradation (as in the paper)");
  for (const char* name : {"PoD-DB", "pFabric", "ToR-DB"}) run(name);
  const int rc = run_scenario_classes();
  bench::write_json("tab05_worstcase");
  return rc;
}
