// Table 5: worst-case stress test — the per-pair fluctuation magnitudes are
// rank-REVERSED (historically stable pairs get the largest noise), directly
// attacking FIGRET's learned fine-grained robustness.
//
// Paper claims:
//  * degradation exceeds the matched-rank case of Table 3 but performance
//    does not collapse (~30-40% at alpha = 2 on DB traces);
//  * the Spearman rank correlation of per-pair variances between train and
//    test splits is very high (0.92-0.98), so this adversarial reversal is
//    rare in practice;
//  * pFabric is barely affected (uniform random pairs => no variance
//    ranking to exploit).
#include <iostream>

#include "bench_common.h"
#include "te/figret.h"
#include "te/harness.h"
#include "traffic/generators.h"
#include "traffic/stats.h"
#include "util/stats.h"
#include "util/table.h"

namespace {

using namespace figret;

struct Metrics {
  double average;
  double p90;
};

Metrics eval_on(const bench::Scenario& sc, te::FigretScheme& scheme,
                const traffic::TrafficTrace& full_trace) {
  te::Harness::Options hopt;
  hopt.eval_stride = sc.eval_stride;
  hopt.max_window = 12;
  te::Harness harness(sc.ps, full_trace, hopt);
  const te::SchemeEval ev = harness.evaluate(scheme, /*fit=*/false);
  return {ev.average(), ev.stats().p90};
}

void run(const std::string& name) {
  const bench::Scenario sc = bench::make_scenario(name);
  const bench::TrainProfile prof = bench::train_profile();
  te::FigretOptions fopt;
  fopt.history = prof.history;
  fopt.hidden = prof.hidden;
  fopt.epochs = prof.epochs;
  fopt.robust_weight = prof.robust_weight;
  te::FigretScheme figret(sc.ps, fopt);

  const std::size_t cut = sc.trace.size() * 3 / 4;
  const traffic::TrafficTrace train = sc.trace.slice(0, cut);
  const traffic::TrafficTrace test = sc.trace.slice(cut, sc.trace.size());
  figret.fit(train);
  const Metrics base = eval_on(sc, figret, sc.trace);

  util::Table t({"alpha", "avg decline %", "90th pct decline %"});
  for (const double alpha : {0.2, 0.5, 1.0, 2.0}) {
    traffic::TrafficTrace perturbed = sc.trace;
    const traffic::TrafficTrace noisy_test =
        traffic::perturb_gaussian_rank_reversed(test, train, alpha,
                                                1300 + alpha * 10);
    for (std::size_t i = 0; i < noisy_test.size(); ++i)
      perturbed.snapshots[cut + i] = noisy_test[i];
    const Metrics m = eval_on(sc, figret, perturbed);
    t.add_row({util::fmt(alpha, 1),
               util::fmt(100.0 * (m.average - base.average) / base.average, 1),
               util::fmt(100.0 * (m.p90 - base.p90) / base.p90, 1)});
  }

  // How likely is this worst case in practice? Spearman correlation of the
  // per-pair variance rankings between train and test.
  const double rho = util::spearman(traffic::pair_variances(train),
                                    traffic::pair_variances(test));
  std::cout << "\n--- " << sc.name << " ---\n";
  t.print(std::cout);
  bench::json_add_table(sc.name, t);
  std::cout << "Spearman(variance ranks, train vs test) = "
            << util::fmt(rho, 3)
            << "  (paper: 0.92 PoD DB / 0.98 ToR DB — reversal is rare)\n";
}

}  // namespace

int main() {
  bench::print_header(
      std::cout, "Table 5 — decline under rank-reversed (worst-case) "
                 "fluctuations",
      "larger decline than Table 3, but no collapse; variance rankings are "
      "stable across time so the attack is unrealistic",
      "negative values mean no degradation (as in the paper)");
  for (const char* name : {"PoD-DB", "pFabric", "ToR-DB"}) run(name);
  bench::write_json("tab05_worstcase");
  return 0;
}
