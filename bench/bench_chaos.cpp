// Chaos soak — fault intensity x worker count over the serving loop.
//
// Each cell runs the seed-driven chaos schedule (failure bursts with
// exponential repair, oracle deadline overruns, worker stalls, ring
// backpressure storms, NaN/Inf/negative outputs, corrupted demand) against
// the graceful-degradation ladder and reports rung occupancy, recovery
// time, dropped demand, and the cross-worker determinism hash.
//
// The gates are exact, not statistical: for a fixed seed every rung count,
// the degraded-epoch total, the max recovery streak, and the determinism
// hash are integers fully determined by the schedule and the (pure,
// analytic) advisor — identical across worker counts and across machines.
// When FIGRET_BENCH_REFERENCE points at a committed BENCH_chaos.json the
// run must reproduce the reference values bit-for-bit; any drift means the
// schedule, the ladder, or the reroute path changed semantics.
#include <array>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "bench_common.h"
#include "net/fabric.h"
#include "net/topology.h"
#include "net/yen.h"
#include "te/chaos.h"
#include "te/serving_loop.h"
#include "traffic/generators.h"
#include "util/json.h"
#include "util/table.h"

namespace {

using namespace figret;

/// Pure advisor: output depends only on the history slice. The determinism
/// gates require this — LP-backed schemes chain per-worker warm state and
/// legitimately diverge across worker counts (documented in te/chaos.h).
class FixedAdvisor final : public te::TeScheme {
 public:
  explicit FixedAdvisor(te::TeConfig cfg) : cfg_(std::move(cfg)) {}
  std::string name() const override { return "Fixed"; }
  void fit(const traffic::TrafficTrace&) override {}
  te::TeConfig advise(std::span<const traffic::DemandMatrix>) override {
    return cfg_;
  }
  std::size_t history_window() const override { return 2; }

 private:
  te::TeConfig cfg_;
};

te::TeConfig skewed_config(const te::PathSet& ps) {
  te::TeConfig raw(ps.num_paths(), 0.0);
  for (std::size_t p = 0; p < ps.num_paths(); ++p)
    raw[p] = 1.0 + static_cast<double>(p % 5);
  return te::normalize_config(ps, raw);
}

struct CellResult {
  std::string intensity;
  std::size_t workers = 0;
  te::ChaosRunReport rep;
  std::uint64_t scheduled_degraded_bound = 0;
};

/// Longest scheduled streak of (masked || corrupted-output) epochs — the
/// recovery bound the ladder must never exceed.
std::uint64_t scheduled_bound(const te::ChaosEngine& chaos) {
  std::uint64_t bound = 0, streak = 0;
  for (std::uint32_t t = chaos.begin(); t < chaos.end(); ++t) {
    const te::EpochPlan& p = chaos.plan(t);
    if (p.mask_id != 0 || p.corruption != te::Corruption::kNone) {
      ++streak;
      bound = std::max(bound, streak);
    } else {
      streak = 0;
    }
  }
  return bound;
}

/// String-scans a committed BENCH_chaos.json (util::Json is a writer) for
/// `"intensity": "<tag>"` ... `"workers": 1` ... `"<key>": <value>`,
/// returning the raw value token (number or quoted string) or "" if absent.
std::string reference_token(const std::string& ref, const std::string& tag,
                            const std::string& key) {
  std::size_t at = ref.find("\"intensity\": \"" + tag + "\"");
  if (at == std::string::npos) return "";
  const std::string needle = "\"" + key + "\": ";
  at = ref.find(needle, at);
  if (at == std::string::npos) return "";
  std::size_t begin = at + needle.size();
  std::size_t end = begin;
  if (ref[begin] == '"') {
    end = ref.find('"', begin + 1);
    return end == std::string::npos ? "" : ref.substr(begin + 1, end - begin - 1);
  }
  while (end < ref.size() && ref[end] != ',' && ref[end] != '\n' &&
         ref[end] != '}')
    ++end;
  return ref.substr(begin, end - begin);
}

}  // namespace

int main() {
  bench::print_header(
      std::cout, "Chaos soak — fault intensity x worker count",
      "under structured fault schedules the serving loop never crashes or "
      "deadlocks, serves finite weights every epoch, recovers within the "
      "scheduled degradation bound, and is bit-reproducible across worker "
      "counts for a fixed seed",
      "6-node mesh, analytic advisor (pure; LP-backed schemes carry warm "
      "state and are exempt from the cross-worker hash gate)");

  const net::Graph g = net::full_mesh(6);
  const te::PathSet ps = te::PathSet::build(g, net::all_pairs_k_shortest(g, 3));
  const traffic::TrafficTrace trace = traffic::dc_tor_trace(6, 360, 97);
  const std::uint32_t begin = 10;
  const auto end = static_cast<std::uint32_t>(trace.size());

  const std::vector<std::string> intensities{"0.1", "0.3", "0.6"};
  const std::vector<std::size_t> worker_counts{1, 2, 4};

  int rc = 0;
  std::vector<CellResult> cells;
  for (const std::string& tag : intensities) {
    const te::ChaosOptions copt =
        te::parse_chaos_spec("seed=42,intensity=" + tag);
    const te::ChaosEngine chaos(ps, net::node_domains(g), copt, begin, end);
    const std::uint64_t bound = scheduled_bound(chaos);
    for (const std::size_t workers : worker_counts) {
      te::ServingLoop::Options opt;
      opt.workers = workers;
      opt.oracle = true;
      opt.solver_deadline_seconds = 0.05;
      opt.oracle_backoff_seconds = 0.00002;
      opt.chaos = &chaos;
      te::ServingLoop loop(ps, trace, opt);
      std::vector<std::unique_ptr<FixedAdvisor>> advisors;
      std::vector<te::TeScheme*> ptrs;
      for (std::size_t i = 0; i < workers; ++i) {
        advisors.push_back(std::make_unique<FixedAdvisor>(skewed_config(ps)));
        ptrs.push_back(advisors.back().get());
      }
      CellResult cell;
      cell.intensity = tag;
      cell.workers = workers;
      cell.rep = te::run_chaos_serving(loop, chaos, ptrs);
      cell.scheduled_degraded_bound = bound;
      cells.push_back(std::move(cell));
    }
  }

  util::Table t({"intensity", "workers", "served", "fresh", "last-good",
                 "uniform", "degraded", "max recovery", "bound", "retries",
                 "dropped demand", "hash"});
  for (const CellResult& c : cells)
    t.add_row({c.intensity, std::to_string(c.workers),
               std::to_string(c.rep.served), std::to_string(c.rep.rungs[0]),
               std::to_string(c.rep.rungs[1]), std::to_string(c.rep.rungs[2]),
               std::to_string(c.rep.degraded_epochs),
               std::to_string(c.rep.max_recovery_epochs),
               std::to_string(c.scheduled_degraded_bound),
               std::to_string(c.rep.stats.oracle_retries),
               util::fmt(c.rep.dropped_demand_total, 2),
               std::to_string(c.rep.determinism_hash)});
  t.print(std::cout);
  std::cout << "\n";

  // Gate 1: every cell served the full range with finite weights.
  for (const CellResult& c : cells) {
    if (c.rep.served != static_cast<std::uint64_t>(end - begin) ||
        !c.rep.all_finite) {
      std::cout << "ERROR: intensity " << c.intensity << " workers "
                << c.workers << ": served " << c.rep.served << "/"
                << end - begin << ", all_finite "
                << (c.rep.all_finite ? "yes" : "NO") << "\n";
      rc = 1;
    }
  }
  // Gate 2: recovery never exceeds the scheduled degradation bound.
  for (const CellResult& c : cells) {
    if (c.rep.max_recovery_epochs > c.scheduled_degraded_bound) {
      std::cout << "ERROR: intensity " << c.intensity << " workers "
                << c.workers << ": recovery " << c.rep.max_recovery_epochs
                << " epochs exceeds scheduled bound "
                << c.scheduled_degraded_bound << "\n";
      rc = 1;
    }
  }
  // Gate 3: bit-reproducibility across worker counts per intensity.
  for (const std::string& tag : intensities) {
    const CellResult* first = nullptr;
    for (const CellResult& c : cells) {
      if (c.intensity != tag) continue;
      if (first == nullptr) {
        first = &c;
        continue;
      }
      if (c.rep.determinism_hash != first->rep.determinism_hash ||
          c.rep.rungs != first->rep.rungs) {
        std::cout << "ERROR: intensity " << tag << ": workers " << c.workers
                  << " diverged from workers " << first->workers
                  << " (hash " << c.rep.determinism_hash << " vs "
                  << first->rep.determinism_hash << ")\n";
        rc = 1;
      }
    }
  }
  std::cout << "soak gates (full service, finite weights, bounded recovery, "
            << "cross-worker hash): " << (rc == 0 ? "PASS" : "FAIL") << "\n";

  // Gate 4: exact reproduction of the committed reference.
  if (const char* ref_path = std::getenv("FIGRET_BENCH_REFERENCE")) {
    std::ifstream in(ref_path);
    if (!in) {
      std::cout << "ERROR: cannot read bench reference " << ref_path << "\n";
      rc = 1;
    } else {
      std::stringstream buf;
      buf << in.rdbuf();
      const std::string ref = buf.str();
      for (const CellResult& c : cells) {
        if (c.workers != 1) continue;  // gate 3 already ties the others
        const std::array<std::pair<const char*, std::string>, 5> checks{{
            {"rung_fresh", std::to_string(c.rep.rungs[0])},
            {"rung_last_good", std::to_string(c.rep.rungs[1])},
            {"rung_uniform", std::to_string(c.rep.rungs[2])},
            {"degraded_epochs", std::to_string(c.rep.degraded_epochs)},
            {"determinism_hash", std::to_string(c.rep.determinism_hash)},
        }};
        for (const auto& [key, cur] : checks) {
          const std::string want = reference_token(ref, c.intensity, key);
          if (want.empty()) {
            std::cout << "reference check i=" << c.intensity << " " << key
                      << ": not in reference — skipped\n";
            continue;
          }
          if (want != cur) {
            std::cout << "ERROR: i=" << c.intensity << " " << key
                      << " drifted: " << cur << " vs reference " << want
                      << "\n";
            rc = 1;
          } else {
            std::cout << "reference check i=" << c.intensity << " " << key
                      << ": " << cur << " — ok\n";
          }
        }
      }
    }
  }

  util::Json j = util::Json::object();
  j.set("bench", "chaos")
      .set("seed", static_cast<std::int64_t>(42))
      .set("nodes", static_cast<std::int64_t>(ps.num_nodes()))
      .set("paths", static_cast<std::int64_t>(ps.num_paths()))
      .set("epochs", static_cast<std::int64_t>(end - begin))
      .set("pass", rc == 0);
  util::Json arr = util::Json::array();
  for (const CellResult& c : cells) {
    util::Json o = util::Json::object();
    o.set("intensity", c.intensity)
        .set("workers", static_cast<std::int64_t>(c.workers))
        .set("served", static_cast<std::int64_t>(c.rep.served))
        .set("rung_fresh", static_cast<std::int64_t>(c.rep.rungs[0]))
        .set("rung_last_good", static_cast<std::int64_t>(c.rep.rungs[1]))
        .set("rung_uniform", static_cast<std::int64_t>(c.rep.rungs[2]))
        .set("degraded_epochs",
             static_cast<std::int64_t>(c.rep.degraded_epochs))
        .set("max_recovery_epochs",
             static_cast<std::int64_t>(c.rep.max_recovery_epochs))
        .set("scheduled_degraded_bound",
             static_cast<std::int64_t>(c.scheduled_degraded_bound))
        .set("mlu_healthy_mean", c.rep.mlu_healthy_mean)
        .set("mlu_degraded_mean", c.rep.mlu_degraded_mean)
        .set("dropped_demand_total", c.rep.dropped_demand_total)
        .set("invalid_outputs",
             static_cast<std::int64_t>(c.rep.stats.invalid_outputs))
        .set("oracle_retries",
             static_cast<std::int64_t>(c.rep.stats.oracle_retries))
        .set("oracle_failures",
             static_cast<std::int64_t>(c.rep.stats.oracle_failures))
        .set("chaos_stalls",
             static_cast<std::int64_t>(c.rep.stats.chaos_stalls))
        // Hash as a string: 64-bit values do not survive double-typed JSON.
        .set("determinism_hash", std::to_string(c.rep.determinism_hash))
        .set("all_finite", c.rep.all_finite);
    arr.push(std::move(o));
  }
  j.set("cells", std::move(arr));
  j.write_file("BENCH_chaos.json", 2);
  std::cout << "machine-readable results: BENCH_chaos.json\n";
  return rc;
}
