// Figure 1: impact of the anti-burst Hedging mechanism on the MLU time
// series, for a WAN (GEANT), a PoD-level and a ToR-level data center.
//
// "No hedging" = configure for the previous snapshot with no anti-burst
// mechanism (Demand-prediction TE); "Hedging" = Google Jupiter's
// Desensitization TE. The paper's observations to reproduce:
//   1. volatility grows from WAN -> PoD -> ToR;
//   2. No-hedging shows higher peaks (burst congestion);
//   3. No-hedging shows lower troughs (better non-burst performance).
#include <algorithm>
#include <iostream>
#include <string>
#include <utility>

#include "bench_common.h"
#include "te/lp_schemes.h"
#include "te/mlu.h"
#include "traffic/adversary.h"
#include "traffic/scenarios.h"
#include "util/stats.h"
#include "util/table.h"

namespace {

using namespace figret;

struct SeriesStats {
  std::vector<double> series;  // MLU normalized to the series max
  double peak = 0.0;           // raw MLU percentiles
  double trough = 0.0;
  double mean = 0.0;
};

SeriesStats run_scheme(const bench::Scenario& sc, te::TeScheme& scheme) {
  const std::size_t window = std::max<std::size_t>(1, scheme.history_window());
  SeriesStats out;
  std::vector<double> raw;
  std::vector<double> loads;  // reused edge-load scratch across snapshots
  // Walk the tail of the trace, one configuration per snapshot.
  const std::size_t begin = std::max<std::size_t>(window, sc.trace.size() / 2);
  for (std::size_t t = begin; t < sc.trace.size(); t += sc.eval_stride) {
    const std::span<const traffic::DemandMatrix> history{
        sc.trace.snapshots.data() + (t - window), window};
    const te::TeConfig cfg = scheme.advise(history);
    raw.push_back(te::mlu(sc.ps, sc.trace[t], cfg, loads));
  }
  const double top = util::percentile(raw, 100.0);
  out.peak = util::percentile(raw, 99.0);
  out.trough = util::percentile(raw, 5.0);
  out.mean = util::mean(raw);
  for (double v : raw) out.series.push_back(top > 0 ? v / top : 0.0);
  return out;
}

void run_scenario(const std::string& name) {
  const bench::Scenario sc = bench::make_scenario(name);
  te::PredictionTe no_hedging(sc.ps);
  te::DesensitizationTe::Options dopt;
  dopt.sensitivity_bound = sc.name == "GEANT" ? 2.0 / 3.0 : 0.5;
  dopt.peak_window = 8;
  te::DesensitizationTe hedging(sc.ps, dopt);

  const SeriesStats none = run_scheme(sc, no_hedging);
  const SeriesStats hedge = run_scheme(sc, hedging);

  std::cout << "\n--- " << sc.name << " (" << sc.note << ") ---\n";
  util::Table t({"strategy", "mean MLU", "trough(p5)", "peak(p99)",
                 "peak/trough"});
  t.add_row_numeric("No hedging",
                    {none.mean, none.trough, none.peak,
                     none.peak / std::max(none.trough, 1e-12)});
  t.add_row_numeric("Hedging",
                    {hedge.mean, hedge.trough, hedge.peak,
                     hedge.peak / std::max(hedge.trough, 1e-12)});
  t.print(std::cout);
  bench::json_add_table(sc.name, t);

  std::cout << "normalized series (every 4th point):\n  no-hedge:";
  for (std::size_t i = 0; i < none.series.size(); i += 4)
    std::cout << ' ' << util::fmt(none.series[i], 2);
  std::cout << "\n  hedging: ";
  for (std::size_t i = 0; i < hedge.series.size(); i += 4)
    std::cout << ' ' << util::fmt(hedge.series[i], 2);
  std::cout << '\n';

  std::cout << "check: no-hedging peak >= hedging peak : "
            << (none.peak >= hedge.peak ? "yes" : "NO") << '\n';
  std::cout << "check: no-hedging trough <= hedging trough: "
            << (none.trough <= hedge.trough ? "yes" : "NO") << '\n';
  bench::json_add_check(sc.name + ": no-hedging peak >= hedging peak",
                        none.peak >= hedge.peak);
  bench::json_add_check(sc.name + ": no-hedging trough <= hedging trough",
                        none.trough <= hedge.trough);
}

// ------------------------------------------------------ scenario classes --
//
// The adversarial / jitter-heavy scenario suite on the GEANT topology: the
// same hedging-vs-no-hedging comparison, but under the CC-literature trace
// generators plus the regret adversary's sequence. Raw MLU magnitudes are
// not comparable across classes (each class sets its own volume scale), so
// the table reports the scale-invariant peak/mean and peak/trough ratios.

void run_scenario_classes() {
  const bench::Scenario sc = bench::make_scenario("GEANT");
  const std::size_t n = sc.trace.num_nodes;
  const std::size_t len = sc.trace.size();

  std::vector<std::pair<std::string, traffic::TrafficTrace>> classes;
  classes.emplace_back("wan (baseline)", sc.trace);
  classes.emplace_back("jitter_spike", traffic::jitter_spike_trace(n, len, 601));
  classes.emplace_back("onoff", traffic::onoff_trace(n, len, 607));
  classes.emplace_back("competitor", traffic::competitor_trace(n, len, 613));
  classes.emplace_back("mixed_interactive_bulk",
                       traffic::mixed_interactive_bulk_trace(n, len, 617));

  // Adversarial class: the regret adversary attacks the no-hedging victim,
  // then its (short) sequence is tiled across the evaluated tail so both
  // schemes face the same demands as the other classes do.
  traffic::AdversaryOptions aopt;
  aopt.steps = 4;
  aopt.iterations = bench::full_mode() ? 32 : 16;
  aopt.oracle_seeds = 3;
  aopt.seed = 619;
  traffic::RegretAdversary adversary(sc.ps, aopt);
  te::PredictionTe victim(sc.ps);
  const std::size_t vwindow =
      std::max<std::size_t>(1, victim.history_window());
  const std::span<const traffic::DemandMatrix> vhist{
      sc.trace.snapshots.data() + (sc.trace.size() - vwindow), vwindow};
  const traffic::AdversaryResult att = adversary.attack(victim, vhist);
  {
    traffic::TrafficTrace adv_trace = sc.trace;  // prefix primes histories
    for (std::size_t t = len / 2; t < len; ++t)
      adv_trace.snapshots[t] = att.trace.snapshots[(t - len / 2) %
                                                   att.trace.size()];
    classes.emplace_back("adversarial", std::move(adv_trace));
  }

  std::cout << "\n--- scenario classes (GEANT) ---\n";
  util::Table t({"class", "strategy", "peak/mean", "peak/trough"});
  double base_volatility = 0.0, jitter_volatility = 0.0;
  for (const auto& [cls, trace] : classes) {
    bench::Scenario class_sc = sc;
    class_sc.trace = trace;
    te::PredictionTe no_hedging(class_sc.ps);
    te::DesensitizationTe::Options dopt;
    dopt.sensitivity_bound = 2.0 / 3.0;
    dopt.peak_window = 8;
    te::DesensitizationTe hedging(class_sc.ps, dopt);
    const SeriesStats none = run_scheme(class_sc, no_hedging);
    const SeriesStats hedge = run_scheme(class_sc, hedging);
    const auto volatility = [](const SeriesStats& s) {
      return s.peak / std::max(s.mean, 1e-12);
    };
    t.add_row({cls, "No hedging", util::fmt(volatility(none), 3),
               util::fmt(none.peak / std::max(none.trough, 1e-12), 3)});
    t.add_row({cls, "Hedging", util::fmt(volatility(hedge), 3),
               util::fmt(hedge.peak / std::max(hedge.trough, 1e-12), 3)});
    if (cls == "wan (baseline)") base_volatility = volatility(none);
    if (cls == "jitter_spike") jitter_volatility = volatility(none);
  }
  t.print(std::cout);
  bench::json_add_table("scenario classes (GEANT)", t);

  std::cout << "check: jitter_spike is burstier than the wan baseline "
            << "(no-hedging peak/mean): "
            << (jitter_volatility > base_volatility ? "yes" : "NO") << '\n';
  bench::json_add_check(
      "classes: jitter_spike burstier than wan baseline (no hedging)",
      jitter_volatility > base_volatility);
  std::cout << "check: adversary regret > 1 against no-hedging: "
            << (att.best_regret > 1.0 ? "yes" : "NO") << " ("
            << util::fmt(att.best_regret, 3) << ")\n";
  bench::json_add_check("classes: adversary regret > 1 (no hedging victim)",
                        att.best_regret > 1.0);
}

}  // namespace

int main() {
  bench::print_header(
      std::cout, "Figure 1 — MLU with vs without the Hedging mechanism",
      "No-hedging has higher peaks and lower troughs than Hedging; "
      "volatility grows WAN -> PoD -> ToR",
      "Meta traces replaced by synthetic equivalents (DESIGN.md §2)");
  for (const char* name : {"GEANT", "PoD-DB", "ToR-DB"}) run_scenario(name);
  run_scenario_classes();
  bench::write_json("fig01_hedging");
  return 0;
}
