// Figure 1: impact of the anti-burst Hedging mechanism on the MLU time
// series, for a WAN (GEANT), a PoD-level and a ToR-level data center.
//
// "No hedging" = configure for the previous snapshot with no anti-burst
// mechanism (Demand-prediction TE); "Hedging" = Google Jupiter's
// Desensitization TE. The paper's observations to reproduce:
//   1. volatility grows from WAN -> PoD -> ToR;
//   2. No-hedging shows higher peaks (burst congestion);
//   3. No-hedging shows lower troughs (better non-burst performance).
#include <iostream>

#include "bench_common.h"
#include "te/lp_schemes.h"
#include "te/mlu.h"
#include "util/stats.h"
#include "util/table.h"

namespace {

using namespace figret;

struct SeriesStats {
  std::vector<double> series;  // MLU normalized to the series max
  double peak = 0.0;           // raw MLU percentiles
  double trough = 0.0;
  double mean = 0.0;
};

SeriesStats run_scheme(const bench::Scenario& sc, te::TeScheme& scheme) {
  const std::size_t window = std::max<std::size_t>(1, scheme.history_window());
  SeriesStats out;
  std::vector<double> raw;
  std::vector<double> loads;  // reused edge-load scratch across snapshots
  // Walk the tail of the trace, one configuration per snapshot.
  const std::size_t begin = std::max<std::size_t>(window, sc.trace.size() / 2);
  for (std::size_t t = begin; t < sc.trace.size(); t += sc.eval_stride) {
    const std::span<const traffic::DemandMatrix> history{
        sc.trace.snapshots.data() + (t - window), window};
    const te::TeConfig cfg = scheme.advise(history);
    raw.push_back(te::mlu(sc.ps, sc.trace[t], cfg, loads));
  }
  const double top = util::percentile(raw, 100.0);
  out.peak = util::percentile(raw, 99.0);
  out.trough = util::percentile(raw, 5.0);
  out.mean = util::mean(raw);
  for (double v : raw) out.series.push_back(top > 0 ? v / top : 0.0);
  return out;
}

void run_scenario(const std::string& name) {
  const bench::Scenario sc = bench::make_scenario(name);
  te::PredictionTe no_hedging(sc.ps);
  te::DesensitizationTe::Options dopt;
  dopt.sensitivity_bound = sc.name == "GEANT" ? 2.0 / 3.0 : 0.5;
  dopt.peak_window = 8;
  te::DesensitizationTe hedging(sc.ps, dopt);

  const SeriesStats none = run_scheme(sc, no_hedging);
  const SeriesStats hedge = run_scheme(sc, hedging);

  std::cout << "\n--- " << sc.name << " (" << sc.note << ") ---\n";
  util::Table t({"strategy", "mean MLU", "trough(p5)", "peak(p99)",
                 "peak/trough"});
  t.add_row_numeric("No hedging",
                    {none.mean, none.trough, none.peak,
                     none.peak / std::max(none.trough, 1e-12)});
  t.add_row_numeric("Hedging",
                    {hedge.mean, hedge.trough, hedge.peak,
                     hedge.peak / std::max(hedge.trough, 1e-12)});
  t.print(std::cout);
  bench::json_add_table(sc.name, t);

  std::cout << "normalized series (every 4th point):\n  no-hedge:";
  for (std::size_t i = 0; i < none.series.size(); i += 4)
    std::cout << ' ' << util::fmt(none.series[i], 2);
  std::cout << "\n  hedging: ";
  for (std::size_t i = 0; i < hedge.series.size(); i += 4)
    std::cout << ' ' << util::fmt(hedge.series[i], 2);
  std::cout << '\n';

  std::cout << "check: no-hedging peak >= hedging peak : "
            << (none.peak >= hedge.peak ? "yes" : "NO") << '\n';
  std::cout << "check: no-hedging trough <= hedging trough: "
            << (none.trough <= hedge.trough ? "yes" : "NO") << '\n';
  bench::json_add_check(sc.name + ": no-hedging peak >= hedging peak",
                        none.peak >= hedge.peak);
  bench::json_add_check(sc.name + ": no-hedging trough <= hedging trough",
                        none.trough <= hedge.trough);
}

}  // namespace

int main() {
  bench::print_header(
      std::cout, "Figure 1 — MLU with vs without the Hedging mechanism",
      "No-hedging has higher peaks and lower troughs than Hedging; "
      "volatility grows WAN -> PoD -> ToR",
      "Meta traces replaced by synthetic equivalents (DESIGN.md §2)");
  for (const char* name : {"GEANT", "PoD-DB", "ToR-DB"}) run_scenario(name);
  bench::write_json("fig01_hedging");
  return 0;
}
