// Ablation: WCMP quantization cost. FIGRET's deployment story (§7) relies
// on commodity WCMP switches, whose tables hold small integer weights. This
// bench measures how much normalized MLU a trained FIGRET model loses when
// its real-valued ratios are quantized to WCMP tables of varying size.
// Expected: negligible loss from ~16 entries up — quantization is not an
// obstacle to deployment.
#include <iostream>

#include "bench_common.h"
#include "te/figret.h"
#include "te/harness.h"
#include "te/mlu.h"
#include "te/wcmp.h"
#include "util/stats.h"
#include "util/table.h"

int main() {
  using namespace figret;
  bench::print_header(
      std::cout, "Ablation — WCMP table size vs TE quality (ToR-DB)",
      "quantizing split ratios to commodity WCMP tables costs ~nothing from "
      "16 entries up (supports the §7 deployment claim)",
      "scaled ToR fabric");

  const bench::Scenario sc = bench::make_scenario("ToR-DB");
  te::Harness::Options hopt;
  hopt.eval_stride = sc.eval_stride;
  hopt.max_window = 12;
  te::Harness harness(sc.ps, sc.trace, hopt);

  const bench::TrainProfile prof = bench::train_profile();
  te::FigretOptions fopt;
  fopt.history = prof.history;
  fopt.hidden = prof.hidden;
  fopt.epochs = prof.epochs;
  fopt.robust_weight = prof.robust_weight;
  te::FigretScheme figret(sc.ps, fopt);
  figret.fit(harness.train_trace());

  const auto& omni = harness.omniscient();
  util::Table t({"WCMP table", "avg norm MLU", "p99", "max ratio error"});

  // Ideal (unquantized) row first, then decreasing table sizes.
  std::vector<te::TeConfig> configs;
  for (const std::size_t tidx : harness.eval_indices()) {
    const std::span<const traffic::DemandMatrix> history{
        sc.trace.snapshots.data() + (tidx - fopt.history), fopt.history};
    configs.push_back(figret.advise(history));
  }
  std::vector<double> loads;  // reused edge-load scratch
  auto evaluate = [&](const char* label, std::uint32_t table) {
    std::vector<double> normalized;
    double worst_err = 0.0;
    for (std::size_t i = 0; i < configs.size(); ++i) {
      te::TeConfig cfg = configs[i];
      if (table > 0) {
        const te::WcmpWeights w = te::quantize_wcmp(sc.ps, cfg, table);
        worst_err =
            std::max(worst_err, te::quantization_error(sc.ps, cfg, w));
        cfg = te::ratios_from_wcmp(sc.ps, w);
      }
      normalized.push_back(
          te::mlu(sc.ps, sc.trace[harness.eval_indices()[i]], cfg, loads) /
          std::max(omni[i], 1e-12));
    }
    t.add_row({label, util::fmt(util::mean(normalized), 4),
               util::fmt(util::percentile(normalized, 99.0), 4),
               table > 0 ? util::fmt(worst_err, 4) : "0 (ideal)"});
  };

  evaluate("ideal (float)", 0);
  evaluate("256 entries", 256);
  evaluate("64 entries", 64);
  evaluate("16 entries", 16);
  evaluate("8 entries", 8);
  evaluate("4 entries", 4);
  t.print(std::cout);
  bench::json_add_table(sc.name, t);
  bench::write_json("ablation_wcmp");
  return 0;
}
