// Shared infrastructure for the per-figure/per-table bench binaries.
//
// Every bench reproduces one table or figure of the paper (DESIGN.md §3).
// Scenarios mirror the paper's eight topology/trace combinations; the two
// ToR-level fabrics and the two Topology-Zoo WANs are scaled down (single
// CPU core, dense-simplex LP baselines) with the substitution documented in
// the emitted header and in DESIGN.md §2. Set FIGRET_BENCH_FULL=1 in the
// environment for larger instances.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "net/graph.h"
#include "te/harness.h"
#include "te/pathset.h"
#include "traffic/demand.h"
#include "util/table.h"

namespace figret::bench {

struct Scenario {
  std::string name;
  std::string note;  // scale / substitution note printed with results
  net::Graph graph;
  te::PathSet ps;
  traffic::TrafficTrace trace;
  /// Harness eval stride (LP baselines are expensive on bigger scenarios).
  std::size_t eval_stride = 1;
};

/// Scenario registry keyed by the paper's names:
/// "GEANT", "UsCarrier", "Cogentco", "pFabric", "PoD-DB", "PoD-WEB",
/// "ToR-DB", "ToR-WEB".
Scenario make_scenario(const std::string& name);

/// All eight evaluation scenarios in the paper's order.
std::vector<std::string> scenario_names();

/// True when FIGRET_BENCH_FULL=1 (bigger instances, longer runtimes).
bool full_mode();

/// FIGRET/DOTE training options tuned for bench runtimes (smaller than the
/// paper's 5x128 architecture in quick mode; full mode uses the paper's).
struct TrainProfile {
  std::size_t history;
  std::vector<std::size_t> hidden;
  std::size_t epochs;
  double robust_weight;
};
TrainProfile train_profile();

/// Prints the standard bench header (figure id, paper claim, scale note).
void print_header(std::ostream& os, const std::string& figure,
                  const std::string& claim, const std::string& note);

/// Formats a SchemeEval as the columns used across the Fig 5-style tables.
std::vector<std::string> eval_row(const te::SchemeEval& ev);
std::vector<std::string> eval_header();

/// Machine-readable mirror of the printed tables. Benches call
/// json_add_table after each Table::print (the section is usually the
/// scenario name), json_add_check for each pass/fail assertion, and
/// write_json once at the end of main to emit BENCH_<id>.json next to the
/// binary — the same artifact shape the dedicated JSON benches produce.
/// Cells that parse fully as numbers are emitted as JSON numbers.
void json_add_table(const std::string& section, const util::Table& table);
void json_add_check(const std::string& name, bool pass);
void write_json(const std::string& bench_id);

}  // namespace figret::bench
