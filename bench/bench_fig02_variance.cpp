// Figure 2: per-SD-pair demand variance (normalized), demonstrating that
// traffic characteristics differ sharply across pairs in every network type.
#include <algorithm>
#include <iostream>

#include "bench_common.h"
#include "traffic/stats.h"
#include "util/stats.h"
#include "util/table.h"

namespace {

using namespace figret;

void run_scenario(const std::string& name) {
  const bench::Scenario sc = bench::make_scenario(name);
  const auto var = traffic::normalized_pair_variances(sc.trace);

  std::cout << "\n--- " << sc.name << " (" << sc.note << ") ---\n";
  if (sc.trace.num_nodes <= 8) {
    // Small enough to print the full matrix, as the paper's heatmap does.
    const std::size_t n = sc.trace.num_nodes;
    std::vector<std::string> header{"src\\dst"};
    for (std::size_t d = 0; d < n; ++d) header.push_back(std::to_string(d));
    util::Table t(header);
    for (std::size_t s = 0; s < n; ++s) {
      std::vector<std::string> row{std::to_string(s)};
      for (std::size_t d = 0; d < n; ++d)
        row.push_back(s == d ? "-"
                             : util::fmt(var[traffic::pair_index(n, s, d)], 2));
      t.add_row(std::move(row));
    }
    t.print(std::cout);
  }

  // Distribution summary (the heatmap's takeaway in numbers).
  const util::BoxStats s = util::box_stats(var);
  const auto frac_above = [&](double thr) {
    return static_cast<double>(std::count_if(
               var.begin(), var.end(), [&](double v) { return v > thr; })) /
           static_cast<double>(var.size());
  };
  util::Table t({"stat", "value"});
  t.add_row({"pairs", std::to_string(var.size())});
  t.add_row({"median normalized variance", util::fmt(s.median, 4)});
  t.add_row({"p90", util::fmt(s.p90, 4)});
  t.add_row({"max", util::fmt(s.max, 4)});
  t.add_row({"fraction > 0.5", util::fmt(frac_above(0.5), 4)});
  t.add_row({"fraction > 0.1", util::fmt(frac_above(0.1), 4)});
  t.print(std::cout);
  bench::json_add_table(sc.name, t);
  std::cout << "check: heterogeneous (median << max): "
            << (s.median < 0.5 * s.max ? "yes" : "NO") << '\n';
  bench::json_add_check(sc.name + ": heterogeneous (median << max)",
                        s.median < 0.5 * s.max);
}

}  // namespace

int main() {
  bench::print_header(
      std::cout, "Figure 2 — variance of traffic demand by SD pair",
      "per-pair variance is highly heterogeneous in WAN, PoD and ToR traffic",
      "");
  for (const char* name : {"GEANT", "PoD-DB", "ToR-DB"}) run_scenario(name);
  bench::write_json("fig02_variance");
  return 0;
}
