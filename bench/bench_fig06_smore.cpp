// Figure 6: the Fig 5 comparison repeated with SMORE-style (Racke oblivious)
// path selection on GEANT and pFabric. "Pred TE" with these paths *is*
// SMORE (path selection by Racke, ratios optimized for predicted demand).
//
// Paper claim: path selection alone does not provide burst robustness —
// SMORE/Pred TE still has the worst tail, FIGRET still wins, and the scheme
// ordering matches Fig 5(a).
#include <iostream>

#include "bench_common.h"
#include "net/racke_paths.h"
#include "te/figret.h"
#include "te/harness.h"
#include "te/lp_schemes.h"
#include "util/table.h"

namespace {

using namespace figret;

void run_scenario(const std::string& name) {
  bench::Scenario sc = bench::make_scenario(name);
  // Swap in SMORE's path selection.
  net::RackePathOptions ropt;
  ropt.paths_per_pair = 3;
  const te::PathSet ps =
      te::PathSet::build(sc.graph, net::racke_style_paths(sc.graph, ropt));

  te::Harness::Options hopt;
  hopt.eval_stride = sc.eval_stride;
  hopt.max_window = 12;
  te::Harness harness(ps, sc.trace, hopt);

  const bench::TrainProfile prof = bench::train_profile();
  te::FigretOptions fopt;
  fopt.history = prof.history;
  fopt.hidden = prof.hidden;
  fopt.epochs = prof.epochs;
  fopt.robust_weight = prof.robust_weight;

  util::Table t(bench::eval_header());
  te::FigretScheme figret(ps, fopt);
  t.add_row(bench::eval_row(harness.evaluate(figret)));
  te::FigretScheme dote(ps, te::dote_options(fopt), "DOTE");
  t.add_row(bench::eval_row(harness.evaluate(dote)));
  te::DesensitizationTe::Options dopt;
  dopt.sensitivity_bound = 2.0 / 3.0;
  dopt.peak_window = 8;
  te::DesensitizationTe des(ps, dopt);
  t.add_row(bench::eval_row(harness.evaluate(des)));
  te::PredictionTe smore(ps);  // == SMORE under Racke path selection
  te::SchemeEval ev = harness.evaluate(smore);
  ev.name = "SMORE/PredTE";
  t.add_row(bench::eval_row(ev));

  std::cout << "\n--- " << sc.name << " with Racke-style paths ("
            << harness.eval_indices().size() << " eval snapshots) ---\n";
  t.print(std::cout);
  bench::json_add_table(sc.name, t);
}

}  // namespace

int main() {
  bench::print_header(
      std::cout, "Figure 6 — TE quality with SMORE (Racke) path selection",
      "path selection alone cannot fix robustness; FIGRET still best, "
      "SMORE/Pred TE worst tail",
      "Racke trees approximated by congestion-penalized path selection "
      "(DESIGN.md §2)");
  for (const char* name : {"GEANT", "pFabric"}) run_scenario(name);
  bench::write_json("fig06_smore");
  return 0;
}
