// Figure 3: the three-node trade-off example. Reproduces the paper's
// hand-computed MLU values for TE schemes 1/2/3 in the normal situation and
// the three burst situations, plus the LP optimum for reference.
//
// Model note (tests/test_mlu.cpp): directed arcs with per-direction capacity;
// the paper's pooled-capacity arithmetic differs on one cell (scheme 3,
// burst 1: 2.0 here vs 2.1875 in the paper). All qualitative conclusions —
// scheme 1 fragile, scheme 2 uniformly hedged, scheme 3 fine-grained —
// are unchanged.
#include <iostream>

#include "bench_common.h"
#include "net/yen.h"
#include "te/lp_schemes.h"
#include "te/mlu.h"
#include "util/table.h"

namespace {

using namespace figret;

struct Triangle {
  net::Graph g{3};
  te::PathSet ps;
  std::size_t ab, ac, bc;

  Triangle() {
    g.add_link(0, 1, 2.0);
    g.add_link(1, 2, 2.0);
    g.add_link(0, 2, 2.0);
    ps = te::PathSet::build(g, net::all_pairs_k_shortest(g, 2));
    ab = traffic::pair_index(3, 0, 1);
    ac = traffic::pair_index(3, 0, 2);
    bc = traffic::pair_index(3, 1, 2);
  }

  te::TeConfig config(double ab_d, double ac_d, double bc_d) const {
    te::TeConfig cfg = te::uniform_config(ps);
    auto assign = [&](std::size_t pr, double direct) {
      for (std::size_t p = ps.pair_begin(pr); p < ps.pair_end(pr); ++p)
        cfg[p] = ps.path_edges(p).size() == 1 ? direct : 1.0 - direct;
    };
    assign(ab, ab_d);
    assign(ac, ac_d);
    assign(bc, bc_d);
    return cfg;
  }

  traffic::DemandMatrix demand(double a, double c, double b) const {
    traffic::DemandMatrix dm(3);
    dm[ab] = a;
    dm[ac] = c;
    dm[bc] = b;
    return dm;
  }
};

}  // namespace

int main() {
  using namespace figret;
  bench::print_header(
      std::cout, "Figure 3 — trade-off example on the A/B/C triangle",
      "scheme 1 optimal in normal case but fragile; scheme 2 robust but "
      "slow in normal case; scheme 3 (fine-grained) best when only B->C "
      "bursts",
      "directed-arc model; see bench source for the one differing cell");

  const Triangle tri;
  const std::vector<std::pair<std::string, te::TeConfig>> schemes = {
      {"TE scheme 1 (all direct)", tri.config(1.0, 1.0, 1.0)},
      {"TE scheme 2 (50/50 everywhere)", tri.config(0.5, 0.5, 0.5)},
      {"TE scheme 3 (hedge only B->C)", tri.config(1.0, 1.0, 0.625)},
  };
  const std::vector<std::pair<std::string, traffic::DemandMatrix>> cases = {
      {"normal (1,1,1)", tri.demand(1, 1, 1)},
      {"burst1 A->B=4", tri.demand(4, 1, 1)},
      {"burst2 A->C=4", tri.demand(1, 4, 1)},
      {"burst3 B->C=4", tri.demand(1, 1, 4)},
  };

  std::vector<double> loads;  // reused edge-load scratch
  std::vector<std::string> header{"scheme"};
  for (const auto& [cname, dm] : cases) header.push_back(cname);
  util::Table t(header);
  for (const auto& [sname, cfg] : schemes) {
    std::vector<std::string> row{sname};
    for (const auto& [cname, dm] : cases)
      row.push_back(util::fmt(te::mlu(tri.ps, dm, cfg, loads), 4));
    t.add_row(std::move(row));
  }
  // Omniscient LP row for context.
  std::vector<std::string> opt_row{"LP optimum (per situation)"};
  for (const auto& [cname, dm] : cases) {
    const te::MluLpResult r = te::solve_mlu_lp(tri.ps, dm);
    opt_row.push_back(util::fmt(r.mlu, 4));
  }
  t.add_row(std::move(opt_row));
  t.print(std::cout);
  bench::json_add_table("triangle", t);
  bench::write_json("fig03_tradeoff");

  std::cout << "\nexpected (paper / directed model):\n"
               "  scheme 1: 0.5, 2, 2, 2\n"
               "  scheme 2: 0.75, 1.5, 1.5, 1.5\n"
               "  scheme 3: 0.6875, 2.0*, 2.1875, 1.25   "
               "(* paper's pooled-capacity value: 2.1875)\n";
  return 0;
}
