// Figure 5: TE quality of FIGRET vs baselines across the paper's eight
// topology/trace combinations, as omniscient-normalized MLU distributions.
//
// Paper claims to reproduce (shape, not absolute numbers):
//  * FIGRET beats Des TE (Google Jupiter) on average everywhere;
//  * FIGRET matches DOTE on stable traces and beats it in the tail (fewer
//    severe-congestion events, normalized MLU > 2) on bursty ToR traces;
//  * Pred TE has bad tails under bursts; TEAL degrades on unexpected bursts;
//  * Oblivious / COPE only run on the small topologies (cf. Table 2).
#include <iostream>
#include <memory>

#include "bench_common.h"
#include "te/cope.h"
#include "te/figret.h"
#include "te/harness.h"
#include "te/lp_schemes.h"
#include "te/oblivious.h"
#include "te/teal_like.h"
#include "util/table.h"

namespace {

using namespace figret;

void run_scenario(const std::string& name) {
  const bench::Scenario sc = bench::make_scenario(name);
  te::Harness::Options hopt;
  hopt.eval_stride = sc.eval_stride;
  hopt.max_window = 12;
  te::Harness harness(sc.ps, sc.trace, hopt);

  const bench::TrainProfile prof = bench::train_profile();
  te::FigretOptions fopt;
  fopt.history = prof.history;
  fopt.hidden = prof.hidden;
  fopt.epochs = prof.epochs;
  fopt.robust_weight = prof.robust_weight;

  util::Table t(bench::eval_header());

  te::FigretScheme figret(sc.ps, fopt);
  t.add_row(bench::eval_row(harness.evaluate(figret)));

  te::FigretScheme dote(sc.ps, te::dote_options(fopt), "DOTE");
  t.add_row(bench::eval_row(harness.evaluate(dote)));

  te::DesensitizationTe::Options dopt;
  dopt.sensitivity_bound = 2.0 / 3.0;  // Appendix C's "Original" setting
  dopt.peak_window = 8;
  te::DesensitizationTe des(sc.ps, dopt);
  t.add_row(bench::eval_row(harness.evaluate(des)));

  te::PredictionTe pred(sc.ps);
  t.add_row(bench::eval_row(harness.evaluate(pred)));

  te::TealOptions topt;
  topt.hidden = prof.hidden;
  topt.epochs = prof.epochs;
  te::TealLikeTe teal(sc.ps, topt);
  t.add_row(bench::eval_row(harness.evaluate(teal)));

  // Oblivious & COPE: small topologies only (paper Table 2: infeasible at
  // ToR scale). A wall-clock budget substitutes for the paper's 1-day cap.
  const bool small = sc.ps.num_nodes() <= 23;
  if (small) {
    te::ObliviousOptions oopt;
    oopt.time_budget_seconds = bench::full_mode() ? 600.0 : 45.0;
    te::ObliviousTe obl(sc.ps, oopt);
    obl.fit(harness.train_trace());
    te::SchemeEval ev = harness.evaluate_config("Oblivious", obl.advise({}));
    if (!obl.result().converged) ev.name += " (budget hit)";
    t.add_row(bench::eval_row(ev));

    te::CopeOptions copt;
    copt.penalty_ratio = 2.0;
    copt.oblivious = oopt;
    te::CopeTe cope(sc.ps, copt);
    cope.fit(harness.train_trace());
    te::SchemeEval cev = harness.evaluate_config("COPE", cope.advise({}));
    if (!cope.result().converged) cev.name += " (budget hit)";
    t.add_row(bench::eval_row(cev));
  }

  std::cout << "\n--- " << sc.name << " (" << sc.note << "; "
            << harness.eval_indices().size() << " eval snapshots) ---\n";
  t.print(std::cout);
  bench::json_add_table(sc.name, t);
}

}  // namespace

int main() {
  bench::print_header(
      std::cout,
      "Figure 5 — normalized MLU, FIGRET vs baselines (8 topologies)",
      "FIGRET balances normal-case and burst-case; beats Des TE by 9-34% "
      "avg; fewer severe-congestion events than DOTE on bursty ToR traces",
      "ToR/Topology-Zoo instances scaled down; see per-scenario notes");
  for (const std::string& name : bench::scenario_names()) run_scenario(name);
  bench::write_json("fig05_tequality");
  return 0;
}
