// Ablation: end-to-end vs the two-stage method (paper §4.2.1).
//
// The two-stage pipeline predicts D^expect with a classical predictor and
// solves the Eq. 5 LP for the prediction; the end-to-end DNN skips the
// explicit prediction. The paper argues the two-stage design is "far from
// ideal" because (a) bursty pairs defeat point prediction and (b) prediction
// accuracy (MSE) is the wrong upstream objective for MLU. Both effects are
// shown here: the per-predictor MSE ordering does NOT match the MLU
// ordering, and the end-to-end scheme beats all two-stage variants.
#include <iostream>
#include <memory>

#include "bench_common.h"
#include "te/figret.h"
#include "te/harness.h"
#include "te/two_stage.h"
#include "traffic/predictor.h"
#include "util/table.h"

namespace {

using namespace figret;

/// Mean prediction MSE of a predictor over the harness's eval snapshots.
double mean_mse(const bench::Scenario& sc, const te::Harness& harness,
                traffic::Predictor& pred, std::size_t window) {
  double acc = 0.0;
  for (const std::size_t t : harness.eval_indices()) {
    const std::span<const traffic::DemandMatrix> h{
        sc.trace.snapshots.data() + (t - window), window};
    acc += traffic::mse(pred.predict(h), sc.trace[t]);
  }
  return acc / static_cast<double>(harness.eval_indices().size());
}

}  // namespace

int main() {
  bench::print_header(
      std::cout, "Ablation — end-to-end vs two-stage TE (ToR-DB)",
      "MSE ranking != MLU ranking (objective mismatch); end-to-end beats "
      "every two-stage predictor",
      "scaled ToR fabric");

  const bench::Scenario sc = bench::make_scenario("ToR-DB");
  te::Harness::Options hopt;
  hopt.eval_stride = sc.eval_stride;
  hopt.max_window = 12;
  te::Harness harness(sc.ps, sc.trace, hopt);

  const bench::TrainProfile prof = bench::train_profile();
  te::FigretOptions fopt;
  fopt.history = prof.history;
  fopt.hidden = prof.hidden;
  fopt.epochs = prof.epochs;
  fopt.robust_weight = prof.robust_weight;

  auto header = bench::eval_header();
  header.push_back("pred MSE (x1e6)");
  util::Table t(header);

  te::FigretScheme figret(sc.ps, fopt);
  auto row = bench::eval_row(harness.evaluate(figret));
  row.push_back("-");  // end-to-end: no explicit prediction
  t.add_row(std::move(row));

  auto add_two_stage = [&](std::unique_ptr<traffic::Predictor> pred) {
    // A fresh copy for the MSE column (TwoStageTe owns the other).
    const std::string pname = pred->name();
    std::unique_ptr<traffic::Predictor> probe;
    if (pname == "last-value")
      probe = std::make_unique<traffic::LastValuePredictor>();
    else if (pname == "moving-average")
      probe = std::make_unique<traffic::MovingAveragePredictor>();
    else if (pname == "ewma")
      probe = std::make_unique<traffic::EwmaPredictor>(0.4);
    else
      probe = std::make_unique<traffic::LinearTrendPredictor>();

    te::TwoStageOptions topt;
    topt.window = 8;
    te::TwoStageTe scheme(sc.ps, std::move(pred), topt);
    auto r = bench::eval_row(harness.evaluate(scheme));
    r.push_back(util::fmt(mean_mse(sc, harness, *probe, 8) * 1e6, 3));
    t.add_row(std::move(r));
  };
  add_two_stage(std::make_unique<traffic::LastValuePredictor>());
  add_two_stage(std::make_unique<traffic::MovingAveragePredictor>());
  add_two_stage(std::make_unique<traffic::EwmaPredictor>(0.4));
  add_two_stage(std::make_unique<traffic::LinearTrendPredictor>());

  t.print(std::cout);
  bench::json_add_table(sc.name, t);
  bench::write_json("ablation_endtoend");
  std::cout << "\nIf lower MSE implied lower MLU the last column would sort "
               "the table; it does not.\n";
  return 0;
}
