// Figure 18 (Appendix G.2): windowed cosine similarity with H = 12 vs
// H = 64. Paper claim: enlarging the window does NOT significantly raise
// similarity — bursts stay unpredictable, so window expansion cannot
// substitute for burst robustness.
#include <iostream>

#include "bench_common.h"
#include "traffic/stats.h"
#include "util/stats.h"
#include "util/table.h"

int main() {
  using namespace figret;
  bench::print_header(
      std::cout, "Figure 18 — cosine similarity, window H=12 vs H=64",
      "expanding the history window barely improves similarity: bursts "
      "remain unpredictable",
      "");

  util::Table t({"topology", "median H=12", "median H=64", "min H=12",
                 "min H=64", "gain(median)"});
  for (const std::string& name : bench::scenario_names()) {
    const bench::Scenario sc = bench::make_scenario(name);
    const auto h12 = traffic::window_max_cosine(sc.trace, 12);
    const auto h64 = traffic::window_max_cosine(sc.trace, 64);
    if (h64.empty()) continue;
    const double m12 = util::percentile(h12, 50.0);
    const double m64 = util::percentile(h64, 50.0);
    t.add_row({name, util::fmt(m12, 4), util::fmt(m64, 4),
               util::fmt(util::percentile(h12, 0.0), 4),
               util::fmt(util::percentile(h64, 0.0), 4),
               util::fmt(m64 - m12, 4)});
  }
  t.print(std::cout);
  bench::json_add_table("window_similarity", t);
  std::cout << "check: median gains are small (< 0.05) across topologies\n";
  bench::write_json("fig18_window");
  return 0;
}
